"""Wire protocol of the oracle-serving subsystem.

One frame = a 4-byte big-endian length prefix + a UTF-8 JSON object.
Requests carry an ``op`` field (``ping`` / ``register`` / ``describe``
/ ``query`` / ``stats``); responses carry ``ok: true`` plus op-specific
payload, or ``ok: false`` plus a typed error record::

    {"ok": false, "error": {"code": "overloaded", "message": "..."}}

The ``code`` strings are stable — they are the contract that lets a
client re-raise the *same* exception class the server raised (see
:func:`error_to_payload` / :func:`error_from_payload`), so callers can
catch :class:`OverloadedError` for backpressure retry loops without
string-matching messages.

Logic values travel as JSON ``0`` / ``1`` / ``null`` (``null`` = X),
matching :mod:`repro.sim.logic`'s ternary domain, and patterns travel
as plain ``{net: value}`` objects — exactly the dicts
:class:`~repro.attacks.oracle.CombinationalOracle` consumes, so the
client needs no translation layer.

Both transports share these helpers: the asyncio server reads frames
with :func:`read_frame_async`, the blocking client with
:func:`recv_frame`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "ServeError",
    "ProtocolError",
    "OverloadedError",
    "ShuttingDownError",
    "DeadlineExceededError",
    "UnknownCircuitError",
    "QueryBudgetExceededError",
    "WorkerCrashedError",
    "error_to_payload",
    "error_from_payload",
    "encode_frame",
    "encode_raw_frame",
    "decode_body",
    "read_frame_async",
    "read_raw_frame_async",
    "write_frame_async",
    "write_raw_frame_async",
    "send_frame",
    "recv_frame",
]

#: Hard ceiling on one frame's JSON body.  Generous enough for any
#: benchmark netlist registration; small enough that a corrupt length
#: prefix cannot make the server buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------

class ServeError(Exception):
    """Base of every serving-layer failure; ``code`` is the wire name."""

    code = "serve-error"
    #: whether a client may retry the identical request later
    retryable = False


class ProtocolError(ServeError):
    """Malformed frame, unknown op, or missing/invalid fields."""

    code = "protocol-error"


class OverloadedError(ServeError):
    """Admission control rejected the request: the queue is full."""

    code = "overloaded"
    retryable = True


class ShuttingDownError(ServeError):
    """The server is draining and accepts no new work."""

    code = "shutting-down"
    retryable = True


class DeadlineExceededError(ServeError):
    """The request's deadline expired before its batch was evaluated."""

    code = "deadline-exceeded"
    retryable = True


class UnknownCircuitError(ServeError):
    """No registered circuit under this ID (never registered/evicted)."""

    code = "unknown-circuit"


class QueryBudgetExceededError(ServeError):
    """The circuit's query budget is spent; further queries are refused."""

    code = "budget-exhausted"


class WorkerCrashedError(ServeError):
    """A shard worker died with this request in flight and it could not
    (or may not) be retried transparently — the request was marked
    ``no_retry``, or the supervisor's retry budget for it is spent.

    Retryable: the supervisor respawns crashed workers, so the same
    request sent again later lands on a fresh worker.
    """

    code = "worker-crashed"
    retryable = True


_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        ServeError, ProtocolError, OverloadedError, ShuttingDownError,
        DeadlineExceededError, UnknownCircuitError,
        QueryBudgetExceededError, WorkerCrashedError,
    )
}


def error_to_payload(exc: BaseException) -> Dict[str, Any]:
    """The ``error`` object of a failure response."""
    code = getattr(exc, "code", "serve-error")
    retryable = bool(getattr(exc, "retryable", False))
    return {"code": code, "message": str(exc), "retryable": retryable}


def error_from_payload(payload: Dict[str, Any]) -> ServeError:
    """Reconstruct the typed exception a failure response describes."""
    if not isinstance(payload, dict):
        return ServeError("malformed error payload")
    cls = _ERROR_TYPES.get(payload.get("code"), ServeError)
    return cls(payload.get("message", "unknown server error"))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Length-prefixed JSON encoding of one message."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LEN.pack(len(body)) + body


def encode_raw_frame(body: bytes) -> bytes:
    """Length-prefix pre-encoded *body* bytes (supervisor passthrough)."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """JSON body bytes -> request/response object; typed error on junk."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object")
    return obj


_decode_body = decode_body  # the historical (private) name


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )


async def read_raw_frame_async(reader) -> Optional[bytes]:
    """Next frame's *body bytes* from an asyncio stream; None on clean EOF.

    The shard supervisor's hot path: it needs the frame boundary (to
    match a worker response to its queued request) but not the JSON
    inside, so responses pass through supervisor -> client without a
    decode/re-encode round trip.
    """
    try:
        prefix = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(prefix)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return body


async def read_frame_async(reader) -> Optional[Dict[str, Any]]:
    """Next message from an asyncio stream; None on clean EOF."""
    body = await read_raw_frame_async(reader)
    if body is None:
        return None
    return decode_body(body)


async def write_frame_async(writer, obj: Dict[str, Any]) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


async def write_raw_frame_async(writer, body: bytes) -> None:
    """Frame pre-encoded *body* bytes (the supervisor's passthrough)."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    writer.write(_LEN.pack(len(body)) + body)
    await writer.drain()


def send_frame(sock: socket.socket, obj: Dict[str, Any]) -> None:
    """Blocking transport (the synchronous client)."""
    sock.sendall(encode_frame(obj))


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Next message from a blocking socket; None on clean EOF."""
    prefix = _recv_exactly(sock, _LEN.size)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_body(body)
