"""Admission control: bounded queueing, deadlines, graceful drain.

The batcher's pending queue must stay bounded under overload — an
oracle server facing an attacker fleet (or a misbehaving client) should
shed load with a typed, retryable error instead of growing its queue
until latency (and memory) diverge.  :class:`AdmissionController`
implements the three policies the server composes:

* **backpressure** — at most ``max_pending`` patterns may be admitted
  and not yet completed; request ``N`` more and the whole request is
  refused with :class:`~repro.serve.protocol.OverloadedError` (never a
  partial admit, so a client's batch is answered all-or-nothing);
* **deadlines** — every admitted request carries an absolute expiry
  (client-supplied ``deadline_ms`` capped by the server's
  ``max_deadline_s``); the batcher rejects expired requests at flush
  time with :class:`~repro.serve.protocol.DeadlineExceededError`
  instead of wasting an evaluation on an answer nobody is waiting for;
* **drain** — :meth:`begin_drain` flips the controller into
  shutting-down mode: new work is refused with
  :class:`~repro.serve.protocol.ShuttingDownError` while everything
  already admitted runs to completion (the server awaits
  :meth:`drained`).

Depth and high-water marks are mirrored to :mod:`repro.obs` gauges
(``serve.queue.depth`` / ``serve.queue.peak``) whenever a session is
active.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..obs import metrics as _metrics
from .protocol import OverloadedError, ShuttingDownError

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Server-side admission policy knobs."""

    #: patterns admitted-but-not-completed before refusing new work
    max_pending: int = 1024
    #: patterns one request may carry (a frame-level sanity bound)
    max_patterns_per_request: int = 4096
    #: deadline applied when the client sends none (None = no deadline)
    default_deadline_s: Optional[float] = None
    #: ceiling on client-requested deadlines (None = uncapped)
    max_deadline_s: Optional[float] = 60.0


class AdmissionController:
    """Pattern-granular admission ledger; see the module docs."""

    def __init__(self, config: Optional[AdmissionConfig] = None,
                 clock=time.monotonic) -> None:
        self.config = config or AdmissionConfig()
        self.clock = clock
        self.pending = 0
        self.peak_pending = 0
        self.admitted = 0
        self.completed = 0
        self.rejected_overload = 0
        self.rejected_draining = 0
        self.expired = 0
        self.draining = False
        # Futures resolved the moment the ledger reaches idle — the
        # event-based alternative to polling `idle` in a sleep loop.
        self._idle_waiters: List["asyncio.Future"] = []

    # ------------------------------------------------------------------

    def deadline_for(self, deadline_ms: Optional[float]) -> Optional[float]:
        """Absolute expiry (controller-clock seconds) for a request."""
        cfg = self.config
        if deadline_ms is None:
            if cfg.default_deadline_s is None:
                return None
            seconds = cfg.default_deadline_s
        else:
            seconds = max(0.0, float(deadline_ms) / 1000.0)
            if cfg.max_deadline_s is not None:
                seconds = min(seconds, cfg.max_deadline_s)
        return self.clock() + seconds

    def admit(self, patterns: int) -> None:
        """Reserve *patterns* slots or raise a typed, retryable error."""
        if self.draining:
            self.rejected_draining += 1
            raise ShuttingDownError("server is draining; retry elsewhere")
        cfg = self.config
        if patterns > cfg.max_patterns_per_request:
            self.rejected_overload += 1
            raise OverloadedError(
                f"request carries {patterns} patterns "
                f"(limit {cfg.max_patterns_per_request})"
            )
        if self.pending + patterns > cfg.max_pending:
            self.rejected_overload += 1
            _metrics.inc("serve.admission.rejected")
            raise OverloadedError(
                f"queue full: {self.pending} pending + {patterns} "
                f"requested > {cfg.max_pending}"
            )
        self.pending += patterns
        self.admitted += patterns
        if self.pending > self.peak_pending:
            self.peak_pending = self.pending
        _metrics.set_gauge("serve.queue.depth", self.pending)

    def release(self, patterns: int) -> None:
        """Return *patterns* slots (request answered or rejected)."""
        self.pending -= patterns
        self.completed += patterns
        assert self.pending >= 0, "admission ledger went negative"
        _metrics.set_gauge("serve.queue.depth", self.pending)
        if self.pending == 0 and self._idle_waiters:
            waiters, self._idle_waiters = self._idle_waiters, []
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_result(True)

    async def wait_idle(self, timeout_s: Optional[float] = None) -> bool:
        """Resolve when every admitted pattern has been released.

        Event-based: :meth:`release` wakes the waiter the instant the
        ledger hits zero — no sleep-loop polling, no wall-clock
        coupling.  Returns False only if *timeout_s* elapsed first.
        """
        if self.idle:
            return True
        waiter = asyncio.get_running_loop().create_future()
        self._idle_waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter, timeout_s)
        except asyncio.TimeoutError:
            return False
        return True

    def note_expired(self, patterns: int) -> None:
        self.expired += patterns

    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        self.draining = True

    @property
    def idle(self) -> bool:
        return self.pending == 0

    def stats(self) -> Dict[str, Any]:
        return {
            "pending": self.pending,
            "peak_pending": self.peak_pending,
            "max_pending": self.config.max_pending,
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected_overload": self.rejected_overload,
            "rejected_draining": self.rejected_draining,
            "expired": self.expired,
            "draining": self.draining,
        }
