"""Compound locking: layering schemes on one design.

SAT-attack-resistant point functions (SARLock, Anti-SAT) barely corrupt
outputs under wrong keys, so in practice they are *compounded* with a
high-corruption scheme (XOR/XNOR locking) — SARLock's own paper does
this, and the GK paper's introduction points at exactly this compound
as the thing AppSAT [10] "exploited ... to crack" (Sec. I).

:class:`CompoundLock` applies any sequence of schemes to one circuit,
accumulating key bits.  The canonical instance is
``CompoundLock([XorLock(), SarLock()])``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..netlist.circuit import Circuit
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = ["CompoundLock"]


class CompoundLock(LockingScheme):
    """Apply several schemes in order, splitting the key bits evenly.

    Args:
        schemes: Applied first to last; each locks the previous stage's
            output.  Uneven splits give the remainder to the first
            scheme.
    """

    def __init__(self, schemes: Sequence[LockingScheme]) -> None:
        if not schemes:
            raise LockingError("compound of zero schemes")
        self.schemes = list(schemes)
        self.name = "+".join(s.name for s in schemes)

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        if num_key_bits < len(self.schemes):
            raise LockingError(
                f"{num_key_bits} key bits across {len(self.schemes)} schemes"
            )
        share, remainder = divmod(num_key_bits, len(self.schemes))
        widths = [
            share + (1 if i < remainder else 0)
            for i in range(len(self.schemes))
        ]
        current = circuit
        key: Dict[str, int] = {}
        stages: List[Tuple[str, int]] = []
        metadata: Dict[str, object] = {}
        for scheme, width in zip(self.schemes, widths):
            stage = scheme.lock(current, width, rng)
            key.update(stage.key)
            stages.append((scheme.name, width))
            metadata[f"stage:{scheme.name}"] = stage.metadata
            current = stage.circuit
        current.name = f"{circuit.name}__compound{num_key_bits}"
        locked = LockedCircuit(
            circuit=current,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={"stages": stages, **metadata},
        )
        assert locked.key_size == num_key_bits
        return locked


@register_scheme(
    "compound",
    description="XOR + SARLock compound (corruption + SAT resistance)",
    tags=("point-function",),
    min_key_bits=2,
)
def _build_compound(clock=None):
    from .sarlock import SarLock
    from .xor_lock import XorLock

    return CompoundLock([XorLock(), SarLock()])
