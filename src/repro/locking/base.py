"""Common interfaces for logic-locking schemes.

Every scheme produces a :class:`LockedCircuit`: the encrypted netlist,
the original it came from, the correct key assignment, and
scheme-specific metadata (the GK scheme records every inserted
structure so the flow can protect its delay chains and the attacks can
locate/strip them, modelling a structural-analysis attacker).

Key inputs are always Boolean wires on the locked netlist — even for
the Glitch Key-gate, whose two key bits statically configure its KEYGEN
(the *transitions* are generated on-chip each cycle; the licensed secret
is which of the four KEYGEN modes is the right one).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit

__all__ = ["LockedCircuit", "LockingScheme", "LockingError"]


class LockingError(RuntimeError):
    """Raised when a scheme cannot be applied (no feasible sites, ...)."""


@dataclass
class LockedCircuit:
    """The output of a locking scheme.

    Attributes:
        circuit: The encrypted netlist (key inputs present).
        original: The pre-encryption netlist (the oracle's netlist).
        key: Key input net -> correct bit.  For schemes with several
            equally-correct assignments this is one canonical choice.
        scheme: Scheme name, e.g. ``"gk"`` or ``"xor"``.
        metadata: Scheme-specific structure records.
    """

    circuit: Circuit
    original: Circuit
    key: Dict[str, int]
    scheme: str
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def key_size(self) -> int:
        return len(self.circuit.key_inputs)

    def key_vector(self) -> List[int]:
        """Correct key bits in ``circuit.key_inputs`` order."""
        return [self.key[net] for net in self.circuit.key_inputs]

    def assignment_for(self, bits: Sequence[int]) -> Dict[str, int]:
        """Key-input assignment dict from a bit vector."""
        if len(bits) != len(self.circuit.key_inputs):
            raise ValueError(
                f"need {len(self.circuit.key_inputs)} bits, got {len(bits)}"
            )
        return dict(zip(self.circuit.key_inputs, bits))

    def random_wrong_key(self, rng: random.Random) -> Dict[str, int]:
        """A uniformly random key that differs from the correct one."""
        correct = self.key_vector()
        while True:
            bits = [rng.randint(0, 1) for _ in correct]
            if bits != correct:
                return self.assignment_for(bits)


class LockingScheme(ABC):
    """A logic-locking technique."""

    #: short identifier, e.g. "xor", "sarlock", "gk"
    name: str = "abstract"

    @abstractmethod
    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        """Encrypt a copy of *circuit* with *num_key_bits* key inputs.

        The input circuit is never modified.  Implementations must raise
        :class:`LockingError` if the request cannot be met (e.g. not
        enough feasible insertion sites).
        """
