"""Anti-SAT (Xie & Srivastava [13]).

The Anti-SAT block feeds two complementary functions of the same PI
word, keyed independently::

    g    = AND_i(pi_i XOR ka_i)        (on-set of size 1)
    gbar = NAND_i(pi_i XOR kb_i)
    y    = g AND gbar

When ``ka == kb`` the two arms are exact complements and ``y`` is the
constant 0 for every input — the block is transparent.  For ``ka !=
kb`` there exists at least one PI word driving ``y = 1``, corrupting
the protected output; because ``g``'s on-set has size one, each DIP
eliminates very few keys and SAT attack needs ~2^(n/2..n) iterations.

Like SARLock this *slows* the attack; the paper's GK instead removes
the attack's footing entirely (Sec. I, Sec. V-A).

Key layout: the first half of the key inputs is ``ka``, the second
``kb``.  The correct key sets ``ka = kb`` (= a random word).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..netlist.circuit import Circuit
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = ["AntiSat"]


@register_scheme(
    "antisat",
    description="Anti-SAT point-function block (Xie & Srivastava)",
    tags=("point-function",),
    key_bits_multiple=2,
    min_key_bits=2,
)
class AntiSat(LockingScheme):
    """Append an Anti-SAT block to one primary output."""

    name = "antisat"

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        if num_key_bits < 2 or num_key_bits % 2:
            raise LockingError("Anti-SAT needs an even key width >= 2")
        width = num_key_bits // 2
        if len(circuit.inputs) < width:
            raise LockingError(
                f"Anti-SAT width {width} needs that many PIs; "
                f"{circuit.name} has {len(circuit.inputs)}"
            )
        if not circuit.outputs:
            raise LockingError("circuit has no primary outputs")
        locked = circuit.clone(f"{circuit.name}__antisat{num_key_bits}")
        cheapest = locked.library.cheapest

        word = [rng.randint(0, 1) for _ in range(width)]
        key: Dict[str, int] = {}
        ka: List[str] = []
        kb: List[str] = []
        for i in range(width):
            net = locked.add_key_input(f"keyin_a{i}")
            key[net] = word[i]
            ka.append(net)
        for i in range(width):
            net = locked.add_key_input(f"keyin_b{i}")
            key[net] = word[i]
            kb.append(net)
        pis = locked.inputs[:width]

        def xor_arm(keys: List[str], tag: str) -> List[str]:
            outs = []
            for pi, k in zip(pis, keys):
                out = locked.new_net(tag)
                locked.add_gate(
                    locked.new_gate_name(tag),
                    cheapest("XOR2").name,
                    {"A": pi, "B": k},
                    out,
                )
                outs.append(out)
            return outs

        def and_tree(nets: List[str], tag: str, invert_last: bool) -> str:
            while len(nets) > 2:
                paired: List[str] = []
                for j in range(0, len(nets) - 1, 2):
                    out = locked.new_net(tag)
                    locked.add_gate(
                        locked.new_gate_name(tag),
                        cheapest("AND2").name,
                        {"A": nets[j], "B": nets[j + 1]},
                        out,
                    )
                    paired.append(out)
                if len(nets) % 2:
                    paired.append(nets[-1])
                nets = paired
            out = locked.new_net(tag)
            function = "NAND2" if invert_last else "AND2"
            if len(nets) == 1:
                # Degenerate width-1 arm: NAND needs two operands.
                function = "INV" if invert_last else "BUF"
                locked.add_gate(
                    locked.new_gate_name(tag),
                    cheapest(function).name,
                    {"A": nets[0]},
                    out,
                )
                return out
            locked.add_gate(
                locked.new_gate_name(tag),
                cheapest(function).name,
                {"A": nets[0], "B": nets[1]},
                out,
            )
            return out

        g = and_tree(xor_arm(ka, "asg"), "asg", invert_last=False)
        gbar = and_tree(xor_arm(kb, "asb"), "asb", invert_last=True)
        y = locked.new_net("asy")
        locked.add_gate(
            locked.new_gate_name("asy"),
            cheapest("AND2").name,
            {"A": g, "B": gbar},
            y,
        )

        victim = locked.outputs[0]
        new_po = locked.new_net("aspo")
        locked.add_gate(
            locked.new_gate_name("aspo"),
            cheapest("XOR2").name,
            {"A": victim, "B": y},
            new_po,
        )
        locked.outputs[0] = new_po
        locked.validate()
        return LockedCircuit(
            circuit=locked,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={"victim_output": victim, "block_output": y},
        )
