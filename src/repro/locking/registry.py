"""The locking-scheme registry: one decorator, one authoritative list.

Every scheme in the repo registers itself here with
:func:`register_scheme`; the CLI's ``--scheme`` choices, the campaign
workers' ``lock``/``attack`` job kinds, and the arena's scenario
validation all read the same table, so a new scheme is one file plus
one decorator — nothing in the integration layer changes, and the CLI
can never drift out of sync with the library again.

Capability tags drive the arena's scheme x attack compatibility
matrix (see :func:`repro.attacks.registry.incompatibility`):

* ``gk-family``        — the scheme records GK structures in
  ``metadata["gks"]``; GK-specific attacks (enhanced removal, scan)
  apply, and SAT-style attacks go through the exposed-key view.
* ``needs-clock``      — the factory needs the design's
  :class:`~repro.sta.clock.ClockSpec` (timing-driven insertion).
* ``sequential-only``  — locking targets flip-flops; combinational
  benchmarks are incompatible.
* ``point-function``   — SAT-resistance via a point function (SARLock,
  Anti-SAT): low corruption, removal-attack food.
* ``multi-key``        — several key assignments are equally correct
  (K-Gate-style input encoding); ``LockedCircuit.key`` is one
  canonical choice.

``corruption_domain`` records where a wrong key's damage shows up:
``"boolean"`` schemes corrupt the combinational function; ``"timing"``
schemes (the GK) corrupt only the timing-accurate chip, which is why
Boolean equivalence under a wrong GK key still holds — the paper's
central claim, and the property the cross-scheme test suite pins.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sta.clock import ClockSpec
    from .base import LockingScheme

__all__ = [
    "SchemeInfo",
    "register_scheme",
    "scheme_names",
    "scheme_info",
    "scheme_infos",
    "build_scheme",
    "ensure_schemes_loaded",
]

#: Modules whose import registers schemes.  ``repro.locking`` pulls in
#: every scheme module of the package; ``repro.core.flow`` carries the
#: GK flow itself.  A scheme living in a new file registers by being
#: imported from ``repro.locking.__init__`` like its siblings.
_PROVIDERS: Tuple[str, ...] = ("repro.locking", "repro.core.flow")

_SCHEMES: Dict[str, "SchemeInfo"] = {}
_LOADED = False


@dataclass(frozen=True)
class SchemeInfo:
    """Registry entry: how to build a scheme and what it is like."""

    name: str
    factory: Callable[[Optional["ClockSpec"]], "LockingScheme"]
    description: str = ""
    tags: FrozenSet[str] = field(default_factory=frozenset)
    #: key widths must be a positive multiple of this
    key_bits_multiple: int = 1
    min_key_bits: int = 1
    #: where wrong-key corruption manifests: "boolean" or "timing"
    corruption_domain: str = "boolean"

    def build(self, clock: Optional["ClockSpec"] = None) -> "LockingScheme":
        """Instantiate the scheme (supplying *clock* when it needs one)."""
        if "needs-clock" in self.tags and clock is None:
            raise ValueError(f"scheme {self.name!r} needs a ClockSpec")
        return self.factory(clock)

    def supports_key_bits(self, key_bits: int) -> Optional[str]:
        """None if *key_bits* is a legal width, else the reason it isn't."""
        if key_bits < self.min_key_bits:
            return (f"scheme {self.name!r} needs >= {self.min_key_bits} "
                    f"key bits")
        if key_bits % self.key_bits_multiple:
            return (f"scheme {self.name!r} needs a multiple of "
                    f"{self.key_bits_multiple} key bits")
        return None


def register_scheme(
    name: str,
    *,
    description: str = "",
    tags: Tuple[str, ...] = (),
    key_bits_multiple: int = 1,
    min_key_bits: int = 1,
    corruption_domain: str = "boolean",
):
    """Class/factory decorator adding one scheme to the registry.

    Decorate a :class:`~repro.locking.base.LockingScheme` subclass
    (instantiated with no arguments, or with the clock when tagged
    ``needs-clock``) or a factory function taking the optional clock.
    """

    def decorator(target):
        if isinstance(target, type):
            if "needs-clock" in tags:
                factory = lambda clock: target(clock)  # noqa: E731
            else:
                factory = lambda clock: target()  # noqa: E731
        else:
            factory = target
        if name in _SCHEMES:
            raise ValueError(f"scheme {name!r} registered twice")
        _SCHEMES[name] = SchemeInfo(
            name=name,
            factory=factory,
            description=description,
            tags=frozenset(tags),
            key_bits_multiple=key_bits_multiple,
            min_key_bits=min_key_bits,
            corruption_domain=corruption_domain,
        )
        return target

    return decorator


def ensure_schemes_loaded() -> None:
    """Import every provider module once, filling the registry."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    for module in _PROVIDERS:
        importlib.import_module(module)


def scheme_names() -> List[str]:
    """Registered scheme names, sorted (the one authoritative list)."""
    ensure_schemes_loaded()
    return sorted(_SCHEMES)


def scheme_info(name: str) -> SchemeInfo:
    ensure_schemes_loaded()
    try:
        return _SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; choose from "
            f"{', '.join(sorted(_SCHEMES))}"
        ) from None


def scheme_infos() -> List[SchemeInfo]:
    ensure_schemes_loaded()
    return [_SCHEMES[name] for name in sorted(_SCHEMES)]


def build_scheme(
    name: str, clock: Optional["ClockSpec"] = None
) -> "LockingScheme":
    """Instantiate the scheme registered under *name*."""
    return scheme_info(name).build(clock)
