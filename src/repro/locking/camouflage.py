"""IC camouflaging and SAT-based de-camouflaging.

The removal-attack literature the paper builds on ([16], "Removal
Attacks on Logic Locking and Camouflaging Techniques") treats
camouflaging as locking's sibling: instead of key inputs, selected
gates are fabricated as look-alike cells whose true function (say NAND
vs NOR vs XOR) cannot be read from the layout.  The attacker sees *a*
cell with known candidate functions and must resolve which.

This module provides both sides:

* :func:`camouflage` — replace chosen 2-input gates by LUT2 cells
  (their truth tables model the dopant-level programming; the
  *attacker view* strips the tables and keeps only the candidate list);
* :func:`decamouflage_attack` — the standard SAT-based resolution: each
  ambiguous cell becomes a key-multiplexed choice among its candidates
  and the ordinary DIP loop recovers the selection, which is why plain
  camouflaging is considered broken and why the paper reaches for
  *timing* (glitches) instead of structural ambiguity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..sim.logic import eval_function
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = [
    "CAMOUFLAGE_CANDIDATES",
    "CamouflagedGate",
    "CamouflagedCircuit",
    "CamouflageLock",
    "camouflage",
    "attacker_view",
    "keyed_model",
    "decamouflage_attack",
]

#: The classic camouflaged-cell candidate set: one layout, four possible
#: dopant programmings.
CAMOUFLAGE_CANDIDATES: Tuple[str, ...] = ("NAND2", "NOR2", "XOR2", "XNOR2")

_TABLES: Dict[str, Tuple[int, ...]] = {
    function: tuple(
        eval_function(function, [(i >> 0) & 1, (i >> 1) & 1])  # type: ignore[misc]
        for i in range(4)
    )
    for function in CAMOUFLAGE_CANDIDATES
}


@dataclass(frozen=True)
class CamouflagedGate:
    """One gate hidden behind a look-alike cell."""

    gate_name: str  # the LUT instance in the camouflaged netlist
    true_function: str  # designer-side secret
    candidates: Tuple[str, ...]


@dataclass
class CamouflagedCircuit:
    """A camouflaged netlist plus the designer's secret programming."""

    circuit: Circuit
    original: Circuit
    gates: List[CamouflagedGate] = field(default_factory=list)

    @property
    def ambiguity_bits(self) -> float:
        """log2 of the naive search space the foundry attacker faces."""
        import math

        return sum(math.log2(len(g.candidates)) for g in self.gates)


def camouflage(
    circuit: Circuit,
    count: int,
    rng: random.Random,
    candidates: Sequence[str] = CAMOUFLAGE_CANDIDATES,
) -> CamouflagedCircuit:
    """Camouflage *count* randomly chosen candidate-function gates.

    Only gates whose real function is in *candidates* can be hidden (a
    look-alike cell must plausibly be the real one).  The camouflaged
    netlist computes the original function — the LUT carries the true
    table — but :func:`attacker_view` redacts it.
    """
    eligible = sorted(
        g.name
        for g in circuit.gates.values()
        if g.function in candidates
    )
    if len(eligible) < count:
        raise ValueError(
            f"only {len(eligible)} gates with functions in "
            f"{tuple(candidates)} are available"
        )
    chosen = rng.sample(eligible, count)
    camo = circuit.clone(f"{circuit.name}__camo{count}")
    records: List[CamouflagedGate] = []
    for name in chosen:
        gate = camo.gates[name]
        function = gate.function
        operands = gate.input_nets()
        output = gate.output
        camo.remove_gate(name)
        lut_name = camo.new_gate_name("camo")
        camo.add_gate(
            lut_name,
            "LUT2_X1",
            {"I0": operands[0], "I1": operands[1]},
            output,
            truth_table=_TABLES[function],
        )
        records.append(
            CamouflagedGate(
                gate_name=lut_name,
                true_function=function,
                candidates=tuple(candidates),
            )
        )
    camo.validate()
    return CamouflagedCircuit(circuit=camo, original=circuit, gates=records)


def attacker_view(camo: CamouflagedCircuit) -> Circuit:
    """The reverse-engineered netlist: look-alike cells, tables unknown.

    Each camouflaged LUT's truth table is replaced by an arbitrary
    placeholder (the attacker cannot read dopant programming); the
    candidate lists in ``camo.gates`` are what layout analysis *does*
    reveal.
    """
    view = camo.circuit.clone(f"{camo.circuit.name}__view")
    placeholder = _TABLES[camo.gates[0].candidates[0]] if camo.gates else None
    for record in camo.gates:
        gate = view.gates[record.gate_name]
        gate.truth_table = placeholder  # type: ignore[assignment]
    view._invalidate()  # truth tables are baked into the compiled IR
    return view


def keyed_model(
    source: Circuit, records: Sequence[CamouflagedGate]
) -> Tuple[Circuit, List[Tuple[CamouflagedGate, str, str]]]:
    """The standard locking reduction of a camouflaged netlist.

    Each ambiguous cell becomes a 4-way choice among its candidate
    functions selected by two fresh key bits (``cam{i}_s0``/``_s1``).
    Returns the keyed circuit plus ``(record, s0, s1)`` selector
    triples.  Both the SAT de-camouflaging attack and
    :class:`CamouflageLock` build on this model.
    """
    modeled = source.clone(f"{source.name}__model")
    selectors: List[Tuple[CamouflagedGate, str, str]] = []
    for i, record in enumerate(records):
        gate = modeled.gates[record.gate_name]
        operands = gate.input_nets()
        output = gate.output
        modeled.remove_gate(record.gate_name)
        arms = []
        for function in record.candidates:
            out = modeled.new_net("camarm")
            modeled.add_gate(
                modeled.new_gate_name("camarm"),
                modeled.library.cheapest(function).name,
                {"A": operands[0], "B": operands[1]},
                out,
            )
            arms.append(out)
        s0 = modeled.add_key_input(f"cam{i}_s0")
        s1 = modeled.add_key_input(f"cam{i}_s1")
        modeled.add_gate(
            modeled.new_gate_name("cammux"),
            modeled.library.cheapest("MUX4").name,
            {"A": arms[0], "B": arms[1], "C": arms[2], "D": arms[3],
             "S0": s0, "S1": s1},
            output,
        )
        selectors.append((record, s0, s1))
    modeled.validate()
    return modeled, selectors


@register_scheme(
    "camouflage",
    description="look-alike cells via the keyed MUX4 reduction",
    key_bits_multiple=2,
    min_key_bits=2,
)
class CamouflageLock(LockingScheme):
    """Camouflaging cast as a locking scheme (two key bits per cell).

    The locked circuit is the keyed reduction of the camouflaged
    netlist: each hidden cell's candidate arms behind a MUX4 whose
    select bits are key inputs.  The correct key picks the true
    function everywhere, so this slots camouflaging straight into the
    scheme x attack arena alongside the key-based schemes.
    """

    name = "camouflage"

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        if num_key_bits < 2 or num_key_bits % 2:
            raise LockingError(
                "each camouflaged cell uses 2 key bits; width must be even"
            )
        try:
            camo = camouflage(circuit, num_key_bits // 2, rng)
        except ValueError as exc:
            raise LockingError(str(exc)) from None
        modeled, selectors = keyed_model(attacker_view(camo), camo.gates)
        modeled.name = f"{circuit.name}__camouflage{num_key_bits}"
        key: Dict[str, int] = {}
        for record, s0, s1 in selectors:
            index = record.candidates.index(record.true_function)
            key[s0] = index & 1
            key[s1] = (index >> 1) & 1
        return LockedCircuit(
            circuit=modeled,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={
                "camouflaged_gates": [
                    {"gate": r.gate_name, "candidates": list(r.candidates)}
                    for r in camo.gates
                ],
            },
        )


@dataclass
class DecamouflageResult:
    resolved: Dict[str, str] = field(default_factory=dict)  # gate -> function
    correct: int = 0
    iterations: int = 0
    completed: bool = False

    @property
    def success(self) -> bool:
        return self.completed and self.correct == len(self.resolved)


def decamouflage_attack(
    camo: CamouflagedCircuit,
    max_iterations: int = 256,
) -> DecamouflageResult:
    """Resolve every camouflaged cell with the SAT attack.

    Builds the standard reduction: each ambiguous cell becomes a
    4-way choice among its candidate functions selected by two fresh
    key bits, then the DIP loop against the activated chip (the
    original design) pins the selection.
    """
    from ..attacks.oracle import CombinationalOracle
    from ..attacks.sat_attack import sat_attack

    modeled, selectors = keyed_model(attacker_view(camo), camo.gates)

    oracle = CombinationalOracle(camo.original)
    attack = sat_attack(modeled, oracle, max_iterations=max_iterations)
    result = DecamouflageResult(
        iterations=attack.iterations, completed=attack.completed
    )
    if attack.key is None:
        return result
    for record, s0, s1 in selectors:
        index = attack.key[s0] | (attack.key[s1] << 1)
        resolved = record.candidates[index]
        result.resolved[record.gate_name] = resolved
        if resolved == record.true_function:
            result.correct += 1
    return result
