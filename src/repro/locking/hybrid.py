"""Hybrid GK + XOR/XNOR encryption (paper Sec. VI, Table II last pair).

The paper's strongest configuration: "we insert XOR gates to the paths
encrypted by GK to defend against the attack from BIST.  We randomly
used one half of the key-inputs to control the XOR key-gates, and the
other half is for GKs."  The XOR gates sit in the fan-in cones of the
GK-guarded flip-flops, so any scan-based measurement of a GK'd path is
confounded by unknown XOR bits (see :mod:`repro.attacks.scan`), while
the GKs keep the whole design SAT-attack-proof.  The hybrid also cuts
area: half the key bits come from single-gate XORs instead of full
GK+KEYGEN structures — Table II shows the overhead dropping from the
16-GK column to the 8 GK + 16 XOR column.

Every XOR insertion into a GK cone is timing-verified: the GK's
Eq. (5) trigger window must still contain its (already synthesized)
trigger after the extra gate delay; insertions that would break a
glitch are rolled back and another site is tried.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from ..netlist.circuit import Circuit
from ..sta.clock import ClockSpec
from ..sta.timing import analyze
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme
from .xor_lock import insert_xor_keygate, lockable_nets

__all__ = ["HybridGkXor"]


@register_scheme(
    "hybrid",
    description="hybrid GK + XOR key-gates in the GK cones (Sec. VI)",
    tags=("gk-family", "needs-clock", "sequential-only"),
    key_bits_multiple=4,
    min_key_bits=4,
    corruption_domain="timing",
)
class HybridGkXor(LockingScheme):
    """Half the key bits drive GKs, half drive XOR gates in their cones."""

    name = "gk+xor"

    def __init__(
        self,
        clock: ClockSpec,
        glitch_length: float = 1.0,
        run_pnr: bool = False,
        margin: float = 0.25,
    ) -> None:
        self.clock = clock
        self.glitch_length = glitch_length
        self.run_pnr = run_pnr
        self.margin = margin

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        from ..core.flow import GkLock  # local import breaks the cycle

        if num_key_bits < 4 or num_key_bits % 4:
            raise LockingError(
                "hybrid needs a multiple of 4 key bits "
                "(half to GKs, which consume 2 each)"
            )
        xor_bits = num_key_bits // 2
        gk_bits = num_key_bits - xor_bits
        gk_scheme = GkLock(
            self.clock,
            glitch_length=self.glitch_length,
            run_pnr=self.run_pnr,
            margin=self.margin,
        )
        base = gk_scheme.lock(circuit, gk_bits, rng)
        locked = base.circuit
        locked.name = f"{circuit.name}__hybrid{num_key_bits}"
        records = base.metadata["gks"]
        protected: Set[str] = set(base.metadata["protected_gates"])

        # Candidate sites: nets inside the GK'd FFs' fan-in cones (the
        # "paths encrypted by GK"), excluding GK/KEYGEN gates and POs.
        po_set = set(locked.outputs)
        per_cone: List[List[str]] = []
        seen: Set[str] = set()
        for record in records:
            x_net = record.live_x_net(locked)
            cone: List[str] = []
            for gate_name in sorted(locked.fanin_cone(x_net)):
                driver = locked.gates.get(gate_name)
                if driver is None or driver.is_flip_flop:
                    continue
                if driver.name in protected:
                    continue
                net = driver.output
                if net in po_set or net in seen:
                    continue
                seen.add(net)
                cone.append(net)
            rng.shuffle(cone)
            per_cone.append(cone)
        # Round-robin across cones so every GK'd path gets XOR coverage
        # before any cone gets a second gate (the point of the hybrid).
        sites: List[str] = []
        while any(per_cone):
            for cone in per_cone:
                if cone:
                    sites.append(cone.pop())
        fallback = [
            net
            for net in lockable_nets(locked)
            if net not in seen
            and locked.driver_of(net) is not None
            and locked.driver_of(net).name not in protected
        ]
        rng.shuffle(fallback)
        sites += fallback

        key: Dict[str, int] = dict(base.key)
        xor_gates: List[Dict[str, str]] = []
        index = 0
        for net in sites:
            if index == xor_bits:
                break
            key_net = locked.add_key_input(f"keyin_h{index}")
            bit = rng.randint(0, 1)
            gate_name = insert_xor_keygate(locked, net, key_net, bit)
            if self._gk_windows_hold(locked, records):
                key[key_net] = bit
                xor_gates.append({"gate": gate_name, "net": net, "key": key_net})
                protected.add(gate_name)
                index += 1
            else:  # roll back: un-splice the key gate
                gate = locked.remove_gate(gate_name)
                locked.rewire_sinks(gate.output, net)
                locked.key_inputs.remove(key_net)
                locked.release_driver(key_net)
        if index < xor_bits:
            raise LockingError(
                f"placed only {index}/{xor_bits} XOR key-gates without "
                "breaking a GK window"
            )
        locked.validate()
        metadata = dict(base.metadata)
        metadata["xor_gates"] = xor_gates
        metadata["protected_gates"] = sorted(protected)
        return LockedCircuit(
            circuit=locked,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata=metadata,
        )

    def _gk_windows_hold(self, locked: Circuit, records) -> bool:
        """Do all GK triggers still sit inside their Eq. (5) windows?"""
        analysis = analyze(locked, self.clock)
        for record in records:
            x_net = record.live_x_net(locked)
            arrival = analysis.arrival_max[x_net]
            gk = record.gk
            ff_cell = locked.gates[gk.ff].cell
            capture = self.clock.period + self.clock.arrival(gk.ff)
            l_min = min(gk.glitch_length_rise, gk.glitch_length_fall)
            earliest = max(
                capture + ff_cell.hold - l_min - gk.d_mux,
                arrival + max(gk.d_path_a, gk.d_path_b),
            )
            latest = record.plan.ub - gk.d_mux
            if not (earliest < record.trigger_correct_achieved < latest):
                return False
        return True
