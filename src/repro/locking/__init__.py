"""Logic-locking schemes: the GK baselines and companions."""

from .base import LockedCircuit, LockingError, LockingScheme
from .keys import enumerate_keys, flip_bits, format_key, hamming_distance, random_key
from .xor_lock import XorLock, insert_xor_keygate, lockable_nets
from .encrypt_ff import po_signatures, rank_groups, select_encrypt_ff_group
from .sarlock import SarLock
from .antisat import AntiSat
from .tdk import TdkLock
from .hybrid import HybridGkXor
from .compound import CompoundLock
from .camouflage import (
    CAMOUFLAGE_CANDIDATES,
    CamouflagedCircuit,
    attacker_view,
    camouflage,
    decamouflage_attack,
)

__all__ = [
    "LockedCircuit", "LockingError", "LockingScheme",
    "enumerate_keys", "flip_bits", "format_key", "hamming_distance", "random_key",
    "XorLock", "insert_xor_keygate", "lockable_nets",
    "po_signatures", "rank_groups", "select_encrypt_ff_group",
    "SarLock", "AntiSat", "TdkLock", "HybridGkXor", "CompoundLock",
    "CAMOUFLAGE_CANDIDATES", "CamouflagedCircuit", "attacker_view",
    "camouflage", "decamouflage_attack",
]
