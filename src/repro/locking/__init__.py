"""Logic-locking schemes: the GK baselines and companions.

Importing this package registers every scheme with
:mod:`repro.locking.registry` — a new scheme is one module here plus
one ``@register_scheme`` decorator.
"""

from .base import LockedCircuit, LockingError, LockingScheme
from .keys import enumerate_keys, flip_bits, format_key, hamming_distance, random_key
from .registry import (
    SchemeInfo,
    build_scheme,
    register_scheme,
    scheme_info,
    scheme_infos,
    scheme_names,
)
from .xor_lock import XorLock, insert_xor_keygate, lockable_nets
from .encrypt_ff import (
    EncryptFF,
    po_signatures,
    rank_groups,
    select_encrypt_ff_group,
)
from .sarlock import SarLock
from .antisat import AntiSat
from .tdk import TdkLock
from .hybrid import HybridGkXor
from .compound import CompoundLock
from .kgate import KGateLock
from .camouflage import (
    CAMOUFLAGE_CANDIDATES,
    CamouflagedCircuit,
    CamouflageLock,
    attacker_view,
    camouflage,
    decamouflage_attack,
    keyed_model,
)

__all__ = [
    "LockedCircuit", "LockingError", "LockingScheme",
    "enumerate_keys", "flip_bits", "format_key", "hamming_distance", "random_key",
    "SchemeInfo", "register_scheme", "build_scheme",
    "scheme_info", "scheme_infos", "scheme_names",
    "XorLock", "insert_xor_keygate", "lockable_nets",
    "EncryptFF", "po_signatures", "rank_groups", "select_encrypt_ff_group",
    "SarLock", "AntiSat", "TdkLock", "HybridGkXor", "CompoundLock",
    "KGateLock",
    "CAMOUFLAGE_CANDIDATES", "CamouflagedCircuit", "CamouflageLock",
    "attacker_view", "camouflage", "decamouflage_attack", "keyed_model",
]
