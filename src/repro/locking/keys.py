"""Key-vector utilities shared by schemes, attacks, and experiments."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "random_key",
    "hamming_distance",
    "flip_bits",
    "enumerate_keys",
    "format_key",
]


def random_key(key_nets: Sequence[str], rng: random.Random) -> Dict[str, int]:
    """A uniformly random assignment for *key_nets*."""
    return {net: rng.randint(0, 1) for net in key_nets}


def hamming_distance(a: Dict[str, int], b: Dict[str, int]) -> int:
    """Number of key bits on which *a* and *b* disagree."""
    if set(a) != set(b):
        raise ValueError("key assignments cover different nets")
    return sum(1 for net in a if a[net] != b[net])


def flip_bits(
    key: Dict[str, int], nets: Iterable[str]
) -> Dict[str, int]:
    """Copy of *key* with the given bits flipped."""
    flipped = dict(key)
    for net in nets:
        flipped[net] = 1 - flipped[net]
    return flipped


def enumerate_keys(key_nets: Sequence[str]) -> Iterable[Dict[str, int]]:
    """All 2^n assignments, in binary counting order (small n only)."""
    n = len(key_nets)
    if n > 20:
        raise ValueError(f"refusing to enumerate 2^{n} keys")
    for value in range(1 << n):
        yield {net: (value >> i) & 1 for i, net in enumerate(key_nets)}


def format_key(key: Dict[str, int], key_nets: Sequence[str]) -> str:
    """Bit-string rendering in *key_nets* order, e.g. ``"0110"``."""
    return "".join(str(key[net]) for net in key_nets)
