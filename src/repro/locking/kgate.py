"""K-Gate-style input-encoding multi-key lock (cf. arXiv:2501.02118).

K-Gate Lock encodes locked inputs with keyed gates such that *several*
key assignments unlock the design: the secret is an equivalence class,
not a single vector, which defeats attacks that assume key uniqueness.

Our single-file rendition pairs key bits: each pair ``(k1, k2)``
splices ``net -> net XOR (k1 XOR k2)`` into a random internal net, so
any assignment with ``k1 == k2`` (00 or 11 per pair) is correct.
``LockedCircuit.key`` records the all-zeros canonical member.

This module doubles as the registry's extensibility proof: one file,
one :func:`~repro.locking.registry.register_scheme` decorator, and the
scheme appears in ``repro list``, every CLI ``choices=``, and arena
scenarios with no integration-layer edits.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..netlist.circuit import Circuit
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = ["KGateLock"]


@register_scheme(
    "kgate",
    description="input-encoding lock with multiple correct keys",
    tags=("multi-key",),
    key_bits_multiple=2,
    min_key_bits=2,
)
class KGateLock(LockingScheme):
    """Pairs of key bits gate a net through ``XOR(k1, k2)``.

    Correct iff the pair agrees — a 2^(bits/2)-member unlocking class.
    """

    name = "kgate"

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        if num_key_bits < 2 or num_key_bits % 2:
            raise LockingError(
                "each K-Gate uses a key-bit pair; width must be even"
            )
        from .xor_lock import lockable_nets

        locked = circuit.clone(f"{circuit.name}__kgate{num_key_bits}")
        pairs = num_key_bits // 2
        candidates = lockable_nets(locked)
        if len(candidates) < pairs:
            raise LockingError(
                f"only {len(candidates)} lockable nets for {pairs} K-Gates"
            )
        sites = rng.sample(candidates, pairs)

        key: Dict[str, int] = {}
        gates: List[Dict[str, str]] = []
        for i, net in enumerate(sites):
            k1 = locked.add_key_input(f"keyin_kg{i}a")
            k2 = locked.add_key_input(f"keyin_kg{i}b")
            # Canonical key member: both zero (11 unlocks identically).
            key[k1] = 0
            key[k2] = 0
            mask = locked.new_net("kgmask")
            mask_gate = locked.new_gate_name("kgm")
            locked.add_gate(
                mask_gate,
                locked.library.cheapest("XOR2").name,
                {"A": k1, "B": k2},
                mask,
            )
            out = locked.new_net("kglk")
            gate_name = locked.new_gate_name("kg")
            locked.rewire_sinks(net, out)
            locked.add_gate(
                gate_name,
                locked.library.cheapest("XOR2").name,
                {"A": net, "B": mask},
                out,
            )
            gates.append(
                {"gate": gate_name, "mask": mask_gate, "net": net,
                 "keys": f"{k1},{k2}"}
            )
        locked.validate()
        return LockedCircuit(
            circuit=locked,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={"key_gates": gates, "keys_per_gate": 2},
        )
