"""Encrypt-Flip-Flop FF-selection algorithm (Karmakar et al. [4]).

Table I's last column reports how many of the GK-available flip-flops
an algorithm from [4] would pick: it "aims at searching for a group of
FFs fanouting to the same set of POs", because encrypting FFs that all
shadow each other's observable outputs defends against scan-based
attacks with higher probability.

We reproduce that selection: group candidate FFs by the *signature* of
primary outputs (and downstream FFs) reachable from their Q pins, and
return the largest group.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..netlist.circuit import Circuit
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = [
    "EncryptFF",
    "po_signatures",
    "select_encrypt_ff_group",
    "rank_groups",
]


def po_signatures(
    circuit: Circuit, candidates: Optional[Iterable[str]] = None
) -> Dict[str, FrozenSet[str]]:
    """FF name -> frozenset of observable sinks reachable from its Q.

    Observable sinks are primary outputs (``po:<net>``) and capturing
    flip-flops (``ff:<gate>``), computed through combinational logic
    only — the same notion of "fanouting to the same set of POs" as [4].
    """
    names = sorted(candidates) if candidates is not None else sorted(
        ff.name for ff in circuit.flip_flops()
    )
    return {name: circuit.transitive_po_set(name) for name in names}


def rank_groups(
    circuit: Circuit, candidates: Optional[Iterable[str]] = None
) -> List[List[str]]:
    """Groups of FFs sharing a PO signature, largest first."""
    groups: Dict[FrozenSet[str], List[str]] = defaultdict(list)
    for name, signature in po_signatures(circuit, candidates).items():
        groups[signature].append(name)
    ranked = sorted(groups.values(), key=lambda g: (-len(g), g[0]))
    return [sorted(g) for g in ranked]


def select_encrypt_ff_group(
    circuit: Circuit, candidates: Optional[Iterable[str]] = None
) -> List[str]:
    """The largest same-signature FF group ([4]'s selection pool).

    Restricted to *candidates* when given (Table I intersects with the
    GK-available FFs).  Returns an empty list for FF-free circuits.
    """
    ranked = rank_groups(circuit, candidates)
    return ranked[0] if ranked else []


@register_scheme(
    "encrypt_ff",
    description="Encrypt-Flip-Flop: key-gates on same-PO-signature FFs",
    tags=("sequential-only",),
)
class EncryptFF(LockingScheme):
    """Encrypt-Flip-Flop locking (Karmakar et al. [4]).

    XOR/XNOR key-gates on the Q outputs of flip-flops chosen by the
    same-PO-signature grouping: encrypting FFs that shadow each other's
    observable outputs resists scan-based key pruning.  Groups are
    consumed largest-first until the key width is covered; FFs whose Q
    net is itself a primary output are skipped (splicing would leave
    the PO reading the raw net).
    """

    name = "encrypt_ff"

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        locked = circuit.clone(f"{circuit.name}__encryptff{num_key_bits}")
        po = set(locked.outputs)
        sites: List[str] = []
        for group in rank_groups(locked):
            sites.extend(
                ff for ff in group if locked.gates[ff].output not in po
            )
        if len(sites) < num_key_bits:
            raise LockingError(
                f"only {len(sites)} encryptable flip-flops for "
                f"{num_key_bits} key bits"
            )
        sites = sites[:num_key_bits]

        from .xor_lock import insert_xor_keygate

        key: Dict[str, int] = {}
        gates: List[Dict[str, str]] = []
        for i, ff in enumerate(sites):
            key_net = locked.add_key_input(f"keyin_eff{i}")
            bit = rng.randint(0, 1)
            key[key_net] = bit
            gate_name = insert_xor_keygate(
                locked, locked.gates[ff].output, key_net, bit
            )
            gates.append({"gate": gate_name, "ff": ff, "key": key_net})
        locked.validate()
        return LockedCircuit(
            circuit=locked,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={"key_gates": gates, "encrypted_ffs": sites},
        )
