"""Tunable Delay Key-gate (TDK) delay locking (Xie et al. [12]; Fig. 2).

A TDK guards the data path into a flip-flop with two keyed stages:

* a **functional key** ``k1`` on an XOR/XNOR gate (classic key-gate), and
* a **delay key** ``k2`` selecting between a direct arm and a
  delay-chain arm of a Tunable Delay Buffer (TDB).

With the wrong ``k2`` the path delay moves outside the ``[LB, UB]``
window of Eq. (1): either the added delay violates setup (Fig. 2(c)) or
the removed delay violates hold (Fig. 2(d); this direction needs the
path to *depend* on the TDB delay, e.g. under capture-clock skew).

The paper's critique (Sec. I) — which :mod:`repro.attacks` demonstrates
— is that TDK falls to a removal attack: strip the TDB, re-synthesize to
fix timing, and the leftover XOR key-gate is ordinary SAT-attack food.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..netlist.circuit import Circuit
from ..synth.delay_synthesis import insert_delay_chain
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = ["TdkLock"]


@register_scheme(
    "tdk",
    description="Tunable Delay Key-gate delay locking (Xie et al.)",
    tags=("sequential-only", "delay-based"),
    key_bits_multiple=2,
    min_key_bits=2,
    corruption_domain="timing",
)
class TdkLock(LockingScheme):
    """Insert TDKs at flip-flop data inputs.

    Each TDK consumes two key bits, so ``num_key_bits`` must be even.

    Args:
        slow_delay: Delay of the TDB's slow arm in ns.  Sized so that
            choosing the wrong arm moves the endpoint outside its
            setup (or hold) window in the experiments.
        ff_names: Optional explicit flip-flops to guard (defaults to a
            random sample).
        correct_slow_fraction: Fraction of TDKs whose *slow* arm is the
            correct one (their fast arm under-delays the path —
            the Fig. 2(d) direction).
    """

    name = "tdk"

    def __init__(
        self,
        slow_delay: float = 1.0,
        ff_names: Optional[Sequence[str]] = None,
        correct_slow_fraction: float = 0.0,
    ) -> None:
        self.slow_delay = slow_delay
        self._ff_names = list(ff_names) if ff_names is not None else None
        self.correct_slow_fraction = correct_slow_fraction

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        if num_key_bits < 2 or num_key_bits % 2:
            raise LockingError("TDK consumes two key bits each; width must be even")
        count = num_key_bits // 2
        locked = circuit.clone(f"{circuit.name}__tdk{num_key_bits}")
        cheapest = locked.library.cheapest
        if self._ff_names is not None:
            chosen = list(self._ff_names)
        else:
            ffs = sorted(ff.name for ff in locked.flip_flops())
            if len(ffs) < count:
                raise LockingError(f"{len(ffs)} FFs cannot host {count} TDKs")
            chosen = rng.sample(ffs, count)

        key: Dict[str, int] = {}
        records: List[Dict[str, object]] = []
        for i, ff_name in enumerate(chosen):
            ff = locked.gates[ff_name]
            data_net = ff.pins["D"]

            k1 = locked.add_key_input(f"keyin_t{2 * i}")
            k2 = locked.add_key_input(f"keyin_t{2 * i + 1}")
            bit1 = rng.randint(0, 1)
            key[k1] = bit1

            # Functional stage: buffer under the correct k1.
            func_out = locked.new_net("tdkf")
            func_gate = locked.new_gate_name("tdkf")
            locked.add_gate(
                func_gate,
                cheapest("XNOR2" if bit1 else "XOR2").name,
                {"A": data_net, "B": k1},
                func_out,
            )

            # TDB: MUX between the direct arm and a delay-chain arm.
            chain = insert_delay_chain(locked, func_out, self.slow_delay, prefix="tdb")
            correct_slow = rng.random() < self.correct_slow_fraction
            key[k2] = 1 if correct_slow else 0
            tdb_out = locked.new_net("tdko")
            tdb_gate = locked.new_gate_name("tdko")
            locked.add_gate(
                tdb_gate,
                cheapest("MUX2").name,
                {"A": func_out, "B": chain.output_net, "S": k2},
                tdb_out,
            )
            locked.reconnect_pin(ff_name, "D", tdb_out)

            records.append(
                {
                    "ff": ff_name,
                    "functional_gate": func_gate,
                    "tdb_gate": tdb_gate,
                    "chain_gates": list(chain.gate_names),
                    "k1": k1,
                    "k2": k2,
                    "correct_slow": correct_slow,
                    "slow_delay": chain.achieved_delay,
                }
            )
        locked.validate()
        protected = [g for r in records for g in r["chain_gates"]]  # type: ignore[misc]
        protected += [r["tdb_gate"] for r in records]  # type: ignore[misc]
        return LockedCircuit(
            circuit=locked,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={"tdks": records, "protected_gates": protected},
        )
