"""XOR/XNOR random logic locking (EPIC, Roy et al. [9]; paper Fig. 1).

The classic combinational scheme: each key bit drives an XOR or XNOR
key-gate spliced into a randomly chosen internal net.  With the correct
bit the gate is a buffer; with the wrong bit, an inverter.  The choice
of XOR-with-0 vs. XNOR-with-1 is itself randomized so the gate type
leaks nothing about the correct bit.

This is both the paper's baseline and one half of its hybrid GK+XOR
encryption (Table II, last column pair).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..netlist.circuit import Circuit
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = ["XorLock", "lockable_nets"]


def lockable_nets(circuit: Circuit) -> List[str]:
    """Internal nets eligible for key-gate insertion.

    Gate outputs that are not POs (splicing a PO would rename it) and
    not already driven by key logic; deterministic order.
    """
    po = set(circuit.outputs)
    nets = [
        gate.output
        for gate in circuit.gates.values()
        if gate.output not in po and gate.function not in ("TIE0", "TIE1")
    ]
    nets.sort()
    return nets


def insert_xor_keygate(
    circuit: Circuit, net: str, key_net: str, correct_bit: int
) -> str:
    """Splice one XOR/XNOR key-gate into *net*; returns the gate name.

    The gate type is chosen so the correct bit makes it a buffer
    (XOR for 0, XNOR for 1).  *key_net* must already be a key input.
    """
    function = "XNOR2" if correct_bit else "XOR2"
    out = circuit.new_net("klk")
    gate_name = circuit.new_gate_name("kg")
    circuit.rewire_sinks(net, out)
    circuit.add_gate(
        gate_name,
        circuit.library.cheapest(function).name,
        {"A": net, "B": key_net},
        out,
    )
    return gate_name


@register_scheme(
    "xor",
    description="random XOR/XNOR key-gate insertion (EPIC-style)",
)
class XorLock(LockingScheme):
    """Random XOR/XNOR key-gate insertion.

    Args:
        sites: Optional explicit insertion nets (defaults to a random
            sample of :func:`lockable_nets`).  One key bit per site.
    """

    name = "xor"

    def __init__(self, sites: Optional[Sequence[str]] = None) -> None:
        self._sites = list(sites) if sites is not None else None

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        locked = circuit.clone(f"{circuit.name}__xor{num_key_bits}")
        if self._sites is not None:
            if len(self._sites) != num_key_bits:
                raise LockingError(
                    f"{len(self._sites)} sites for {num_key_bits} key bits"
                )
            sites = list(self._sites)
        else:
            candidates = lockable_nets(locked)
            if len(candidates) < num_key_bits:
                raise LockingError(
                    f"only {len(candidates)} lockable nets for "
                    f"{num_key_bits} key bits"
                )
            sites = rng.sample(candidates, num_key_bits)

        key: Dict[str, int] = {}
        gates: List[Dict[str, str]] = []
        for i, net in enumerate(sites):
            key_net = locked.add_key_input(f"keyin_x{i}")
            bit = rng.randint(0, 1)
            key[key_net] = bit
            # XOR passes the data through when the key bit is 0, XNOR
            # when it is 1 — the correct bit always yields a buffer.
            function = "XNOR2" if bit else "XOR2"
            out = locked.new_net("klk")
            gate_name = locked.new_gate_name("kg")
            # Splice: move the original readers of `net` onto the
            # key-gate output, then connect the key-gate input to `net`.
            locked.rewire_sinks(net, out)
            locked.add_gate(
                gate_name,
                locked.library.cheapest(function).name,
                {"A": net, "B": key_net},
                out,
            )
            gates.append({"gate": gate_name, "net": net, "key": key_net})
        locked.validate()
        return LockedCircuit(
            circuit=locked,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={"key_gates": gates},
        )
