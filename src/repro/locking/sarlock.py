"""SARLock (Yasin et al. [14]): point-function SAT-attack mitigation.

SARLock flips one primary output exactly when the primary-input word
equals the (wrong) key word, with a mask that silences the flip for the
correct key.  Each DIP the SAT attack finds therefore eliminates just
*one* wrong key, forcing exponentially many iterations — the behaviour
the paper contrasts GK against (Sec. I): GK invalidates the attack
outright instead of slowing it down.

Structure (type as in the original paper)::

    flip = AND_i(pi_i XNOR k_i)  AND  NOT(AND_i(k_i XNOR c_i))
    po'  = po XOR flip

where ``c`` is the hard-coded correct key.  The comparator uses the
first ``n`` primary inputs.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..netlist.circuit import Circuit
from .base import LockedCircuit, LockingError, LockingScheme
from .registry import register_scheme

__all__ = ["SarLock"]


@register_scheme(
    "sarlock",
    description="SARLock point-function SAT mitigation",
    tags=("point-function",),
)
class SarLock(LockingScheme):
    """Append a SARLock comparator to one primary output."""

    name = "sarlock"

    def lock(
        self, circuit: Circuit, num_key_bits: int, rng: random.Random
    ) -> LockedCircuit:
        if num_key_bits < 1:
            raise LockingError("SARLock needs at least one key bit")
        if len(circuit.inputs) < num_key_bits:
            raise LockingError(
                f"SARLock over {num_key_bits} bits needs that many PIs; "
                f"{circuit.name} has {len(circuit.inputs)}"
            )
        if not circuit.outputs:
            raise LockingError("circuit has no primary outputs")
        locked = circuit.clone(f"{circuit.name}__sar{num_key_bits}")
        cheapest = locked.library.cheapest

        key: Dict[str, int] = {}
        key_nets: List[str] = []
        for i in range(num_key_bits):
            net = locked.add_key_input(f"keyin_s{i}")
            key[net] = rng.randint(0, 1)
            key_nets.append(net)
        pis = locked.inputs[:num_key_bits]

        def and_tree(nets: List[str], tag: str) -> str:
            while len(nets) > 1:
                paired: List[str] = []
                for j in range(0, len(nets) - 1, 2):
                    out = locked.new_net(tag)
                    locked.add_gate(
                        locked.new_gate_name(tag),
                        cheapest("AND2").name,
                        {"A": nets[j], "B": nets[j + 1]},
                        out,
                    )
                    paired.append(out)
                if len(nets) % 2:
                    paired.append(nets[-1])
                nets = paired
            return nets[0]

        # Comparator: PI word == key word.
        eq_bits: List[str] = []
        for pi, k in zip(pis, key_nets):
            out = locked.new_net("sareq")
            locked.add_gate(
                locked.new_gate_name("sareq"),
                cheapest("XNOR2").name,
                {"A": pi, "B": k},
                out,
            )
            eq_bits.append(out)
        match = and_tree(eq_bits, "sarand")

        # Mask: key word == hard-coded correct word (then inverted).
        mask_bits: List[str] = []
        for k in key_nets:
            out = locked.new_net("sarmk")
            if key[k]:
                cell, pins = cheapest("BUF"), {"A": k}
            else:
                cell, pins = cheapest("INV"), {"A": k}
            locked.add_gate(locked.new_gate_name("sarmk"), cell.name, pins, out)
            mask_bits.append(out)
        is_correct = and_tree(mask_bits, "sarmka")
        not_correct = locked.new_net("sarmkn")
        locked.add_gate(
            locked.new_gate_name("sarmkn"),
            cheapest("INV").name,
            {"A": is_correct},
            not_correct,
        )

        flip = locked.new_net("sarflip")
        locked.add_gate(
            locked.new_gate_name("sarflip"),
            cheapest("AND2").name,
            {"A": match, "B": not_correct},
            flip,
        )

        # Flip the first PO through an XOR.
        victim = locked.outputs[0]
        new_po = locked.new_net("sarpo")
        locked.add_gate(
            locked.new_gate_name("sarpo"),
            cheapest("XOR2").name,
            {"A": victim, "B": flip},
            new_po,
        )
        locked.outputs[0] = new_po
        locked.validate()
        return LockedCircuit(
            circuit=locked,
            original=circuit,
            key=key,
            scheme=self.name,
            metadata={"victim_output": victim, "flip_net": flip},
        )
