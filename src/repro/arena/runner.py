"""Arena execution: scenario -> campaign -> checked results.

:func:`run_arena` is deliberately thin: the scenario expands to
``arena``-kind :class:`~repro.campaign.matrix.JobSpec` cells, the
existing campaign engine runs them, and the result wraps the records
with the skip list and the scenario's expectation verdicts.  The
leaderboard itself is a reporting concern
(:mod:`repro.reporting.leaderboard`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..campaign.matrix import JobSpec
from ..campaign.runner import CampaignConfig, CampaignResult, run_campaign
from .scenario import ArenaCell, Scenario

__all__ = ["ArenaResult", "run_arena", "arena_jobs"]

#: the module pool workers import to register the ``arena`` job kind
_WORKER_MODULE = "repro.arena.jobs"


def arena_jobs(scenario: Scenario) -> Tuple[List[JobSpec], List[ArenaCell],
                                            List[Tuple[ArenaCell, str]]]:
    """(jobs, runnable cells, skipped cells) for a scenario."""
    runnable, skipped = scenario.cells()
    jobs = [
        JobSpec.make(
            "arena",
            benchmark=cell.benchmark,
            scheme=cell.scheme,
            attack=cell.attack,
            key_bits=cell.key_bits,
            seed=cell.seed,
            attack_params=scenario.params_for(cell.attack),
        )
        for cell in runnable
    ]
    return jobs, runnable, skipped


@dataclass
class ArenaResult:
    """One arena run: campaign records plus arena-level bookkeeping."""

    scenario: Scenario
    cells: List[ArenaCell]
    skipped: List[Tuple[ArenaCell, str]]
    campaign: CampaignResult
    #: (cell, mismatch description) for every failed expectation
    expectation_failures: List[Tuple[ArenaCell, str]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return self.campaign.ok and not self.expectation_failures

    def outcomes(self) -> List[Tuple[ArenaCell, Optional[Dict[str, Any]]]]:
        """Cells paired with their outcome dicts (None for failed cells)."""
        paired = []
        for cell, record in zip(self.cells, self.campaign.ordered()):
            payload = record.get("payload") or {}
            outcome = payload.get("outcome") if record["status"] == "ok" else None
            paired.append((cell, outcome))
        return paired


def _check_expectations(
    scenario: Scenario,
    pairs: List[Tuple[ArenaCell, Optional[Dict[str, Any]]]],
) -> List[Tuple[ArenaCell, str]]:
    failures: List[Tuple[ArenaCell, str]] = []
    for expectation in scenario.expectations:
        for cell, outcome in pairs:
            if not expectation.matches(cell):
                continue
            if outcome is None:
                failures.append((cell, "cell failed; expectation unchecked"))
                continue
            for problem in expectation.check(outcome):
                failures.append((cell, problem))
    return failures


def run_arena(
    scenario: Scenario,
    config: Optional[CampaignConfig] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ArenaResult:
    """Run every runnable cell of *scenario* on the campaign engine.

    *config* is the ordinary campaign config (jobs, timeout, cache,
    store, resume); the arena's job kind module is appended to its
    ``worker_modules`` so pool workers can execute ``arena`` cells.
    """
    config = config or CampaignConfig()
    if _WORKER_MODULE not in config.worker_modules:
        config.worker_modules = tuple(config.worker_modules) + (
            _WORKER_MODULE,
        )
    jobs, runnable, skipped = arena_jobs(scenario)
    campaign = run_campaign(jobs, config, progress=progress)
    result = ArenaResult(
        scenario=scenario,
        cells=runnable,
        skipped=skipped,
        campaign=campaign,
    )
    result.expectation_failures = _check_expectations(
        scenario, result.outcomes()
    )
    return result
