"""The attack x scheme arena: declarative scenario files on the
campaign engine.

A scenario is a stdlib-JSON file naming schemes, attacks, benchmarks,
key widths, and seeds; the arena expands the cross product, skips
capability-incompatible cells with explicit reasons (the registries'
tag algebra decides), runs the rest on the campaign engine
(ProcessPool fan-out, content-addressed cache, resumable JSONL store),
and aggregates one leaderboard.  Data, not code: adding a scheme or
attack to the matrix is editing a JSON list.
"""

from .scenario import ArenaCell, Expectation, Scenario
from .runner import ArenaResult, run_arena

__all__ = [
    "ArenaCell",
    "Expectation",
    "Scenario",
    "ArenaResult",
    "run_arena",
]
