"""Scenario files: the arena's declarative input.

A scenario is plain JSON (stdlib only) with this shape::

    {
      "name": "smoke",
      "benchmarks": ["s1238"],
      "schemes": ["xor", "sarlock"],
      "attacks": ["appsat", "removal"],
      "key_bits": [4],
      "seeds": [2019],
      "attack_params": {"appsat": {"max_rounds": 8}},
      "expectations": [
        {"where": {"scheme": "sarlock", "attack": "removal"},
         "expect": {"success": true}}
      ]
    }

``benchmarks``/``key_bits``/``seeds`` default to ``["s1238"]`` / ``[8]``
/ ``[2019]``.  Every name is validated against the registries (and the
benchmark suite) at load time, so a typo fails fast with the list of
choices instead of erroring one cell at a time mid-campaign.

``attack_params`` reaches each runner through
:meth:`~repro.attacks.registry.AttackContext.param`; any knob a runner
reads is addressable per attack.  Notably the SAT-based families
(``sat``/``appsat``/``tcf``) accept ``{"portfolio": N}`` to race N
solver configurations per SAT query (plus ``portfolio_deadline``
seconds per race); with a campaign cache, portfolio cells warm-start
their shared clause pools from previous runs on the same
netlist+oracle.  See ``examples/arena/portfolio.json``.

Expansion is the full cross product; cells the capability tags rule
out — a GK-specific attack against a scheme that inserts no GKs, a key
width the scheme cannot honor — are *skipped with a reason*, never
errored: an all-pairs matrix is supposed to contain impossible pairs.

``expectations`` are per-cell assertions checked after the campaign:
``where`` filters cells by any subset of the five axes, ``expect``
compares outcome fields (``success``, ``key_correct``, ``completed``,
...) on every matching runnable cell.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ArenaCell", "Expectation", "Scenario"]

_CELL_AXES = ("benchmark", "scheme", "attack", "key_bits", "seed")
_SCENARIO_KEYS = {
    "name", "benchmarks", "schemes", "attacks", "key_bits", "seeds",
    "attack_params", "expectations",
}


@dataclass(frozen=True)
class ArenaCell:
    """One point of the scheme x attack cross product."""

    benchmark: str
    scheme: str
    attack: str
    key_bits: int
    seed: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "attack": self.attack,
            "key_bits": self.key_bits,
            "seed": self.seed,
        }

    def describe(self) -> str:
        return (f"{self.benchmark}/{self.scheme}(k={self.key_bits})"
                f" vs {self.attack} [seed {self.seed}]")


@dataclass(frozen=True)
class Expectation:
    """A declarative assertion over matching cells' outcomes."""

    where: Tuple[Tuple[str, Any], ...]
    expect: Tuple[Tuple[str, Any], ...]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Expectation":
        unknown = set(data) - {"where", "expect"}
        if unknown:
            raise ValueError(
                f"expectation keys must be 'where'/'expect', got "
                f"{sorted(unknown)}"
            )
        where = dict(data.get("where", {}))
        bad = set(where) - set(_CELL_AXES)
        if bad:
            raise ValueError(
                f"expectation 'where' keys must be among {_CELL_AXES}, "
                f"got {sorted(bad)}"
            )
        expect = dict(data.get("expect", {}))
        if not expect:
            raise ValueError("expectation needs a non-empty 'expect'")
        return cls(
            where=tuple(sorted(where.items())),
            expect=tuple(sorted(expect.items())),
        )

    def matches(self, cell: ArenaCell) -> bool:
        values = cell.to_dict()
        return all(values[key] == want for key, want in self.where)

    def check(self, outcome: Mapping[str, Any]) -> List[str]:
        """Mismatch descriptions for one cell's outcome (empty = pass)."""
        problems = []
        for field_name, want in self.expect:
            got = outcome.get(field_name)
            if got != want:
                problems.append(f"{field_name}: expected {want!r}, got {got!r}")
        return problems


@dataclass(frozen=True)
class Scenario:
    """A validated scenario: axes, per-attack knobs, expectations."""

    name: str
    benchmarks: Tuple[str, ...]
    schemes: Tuple[str, ...]
    attacks: Tuple[str, ...]
    key_bits: Tuple[int, ...]
    seeds: Tuple[int, ...]
    attack_params: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    expectations: Tuple[Expectation, ...] = ()

    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        unknown = set(data) - _SCENARIO_KEYS
        if unknown:
            raise ValueError(
                f"unknown scenario keys {sorted(unknown)}; expected a "
                f"subset of {sorted(_SCENARIO_KEYS)}"
            )
        for axis in ("schemes", "attacks"):
            if not data.get(axis):
                raise ValueError(f"scenario needs a non-empty {axis!r} list")

        from ..attacks.registry import attack_names
        from ..bench.iwls import BENCHMARKS
        from ..locking.registry import scheme_names

        benchmarks = tuple(data.get("benchmarks", ["s1238"]))
        schemes = tuple(data["schemes"])
        attacks = tuple(data["attacks"])
        key_bits = tuple(int(k) for k in data.get("key_bits", [8]))
        seeds = tuple(int(s) for s in data.get("seeds", [2019]))

        for label, got, known in (
            ("benchmark", benchmarks, tuple(BENCHMARKS)),
            ("scheme", schemes, tuple(scheme_names())),
            ("attack", attacks, tuple(attack_names())),
        ):
            bad = [name for name in got if name not in known]
            if bad:
                raise ValueError(
                    f"unknown {label}(s) {bad}; choose from "
                    f"{', '.join(known)}"
                )
        for label, axis in (("benchmarks", benchmarks),
                            ("schemes", schemes), ("attacks", attacks)):
            if len(set(axis)) != len(axis):
                raise ValueError(f"duplicate {label} in scenario")
        if any(k < 1 for k in key_bits):
            raise ValueError("key_bits must be positive")

        raw_params = data.get("attack_params", {})
        bad = [name for name in raw_params if name not in attacks]
        if bad:
            raise ValueError(
                f"attack_params for attacks not in the scenario: {bad}"
            )
        attack_params = tuple(
            (name, tuple(sorted(dict(raw_params[name]).items())))
            for name in sorted(raw_params)
        )

        expectations = tuple(
            Expectation.from_dict(item)
            for item in data.get("expectations", [])
        )
        return cls(
            name=str(data.get("name", "arena")),
            benchmarks=benchmarks,
            schemes=schemes,
            attacks=attacks,
            key_bits=key_bits,
            seeds=seeds,
            attack_params=attack_params,
            expectations=expectations,
        )

    @classmethod
    def from_file(cls, path: str) -> "Scenario":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from None
        if not isinstance(data, dict):
            raise ValueError(f"{path}: scenario must be a JSON object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------

    def params_for(self, attack: str) -> Dict[str, Any]:
        for name, params in self.attack_params:
            if name == attack:
                return dict(params)
        return {}

    def cells(self) -> Tuple[List[ArenaCell], List[Tuple[ArenaCell, str]]]:
        """Expand the cross product into (runnable, skipped-with-reason).

        Skips come from the registries' capability algebra: key widths
        the scheme cannot honor and scheme x attack incompatibilities.
        Expansion order is benchmark-major, seed-minor — deterministic,
        so job lists (and each cell's content-addressed id) reproduce.
        """
        from ..attacks.registry import attack_info, incompatibility
        from ..locking.registry import scheme_info

        runnable: List[ArenaCell] = []
        skipped: List[Tuple[ArenaCell, str]] = []
        for benchmark in self.benchmarks:
            for scheme in self.schemes:
                info = scheme_info(scheme)
                for attack in self.attacks:
                    clash = incompatibility(info, attack_info(attack))
                    for key_bits in self.key_bits:
                        width_problem = info.supports_key_bits(key_bits)
                        for seed in self.seeds:
                            cell = ArenaCell(
                                benchmark, scheme, attack, key_bits, seed
                            )
                            if clash is not None:
                                skipped.append((cell, clash))
                            elif width_problem is not None:
                                skipped.append((cell, width_problem))
                            else:
                                runnable.append(cell)
        return runnable, skipped

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "schemes": list(self.schemes),
            "attacks": list(self.attacks),
            "key_bits": list(self.key_bits),
            "seeds": list(self.seeds),
            "attack_params": {
                name: dict(params) for name, params in self.attack_params
            },
            "expectations": [
                {"where": dict(e.where), "expect": dict(e.expect)}
                for e in self.expectations
            ],
        }
