"""The ``arena`` campaign job kind: lock one design, run one attack.

Registered with :func:`repro.campaign.worker.register_kind` like the
paper's built-in sweeps, so arena cells inherit the whole campaign
machinery — content-addressed caching, deadlines, retry taxonomy,
JSONL resume — for free.  This module is the arena's
``worker_modules`` entry: pool workers import it in their initializer
to replay the registration.

The cached payload embeds the full normalized
:class:`~repro.attacks.outcome.AttackOutcome` dict *including the wall
time measured at compute time*: a resumed or cache-hitting run replays
identical payloads, which is what makes a resumed leaderboard
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from typing import Any, Dict

from ..campaign.cache import NetlistCache
from ..campaign.worker import _instance, register_kind

__all__ = ["BENCH_SEED"]

#: Generation seed for benchmark instances (shared with the paper's
#: sweep kinds so one cached instance serves every harness).
BENCH_SEED = 2019


@register_kind("arena")
def _run_arena_cell(
    params: Dict[str, Any], cache: NetlistCache
) -> Dict[str, Any]:
    import random

    from ..attacks.registry import AttackContext, run_attack
    from ..locking.registry import build_scheme

    benchmark = params["benchmark"]
    scheme = params["scheme"]
    attack = params["attack"]
    key_bits = int(params["key_bits"])
    seed = int(params["seed"])
    attack_params = dict(params.get("attack_params", {}))
    key = cache.key(
        kind="arena", benchmark=benchmark, scheme=scheme, attack=attack,
        key_bits=key_bits, seed=seed, attack_params=attack_params,
    )

    def compute() -> Dict[str, Any]:
        instance = _instance(benchmark, BENCH_SEED, cache)
        locked = build_scheme(scheme, instance.clock).lock(
            instance.circuit, key_bits, random.Random(seed)
        )
        context = AttackContext(
            locked=locked,
            clock=instance.clock,
            seed=seed,
            params=attack_params,
            # Warm-start clause pools (portfolio=N cells) persist in the
            # same campaign cache the cell results live in.
            cache=cache,
        )
        outcome = run_attack(attack, context)
        return {
            "benchmark": benchmark,
            "scheme": scheme,
            "attack": attack,
            "key_bits": key_bits,
            "seed": seed,
            "outcome": outcome.to_dict(),
        }

    return cache.get_or_compute(key, compute)
