"""Output-corruption metrics for wrong keys.

Sec. VI argues a GK "can act as an inverter or a buffer just like
conventional key-gate does, and the behaviors provide a stronger
corruptibility to POs than other SAT resistant methods" — point
functions like SARLock corrupt one input pattern per wrong key, while a
wrong GK key complements a flip-flop *every cycle*.

Corruptibility here is the standard logic-locking metric: the fraction
of observed output bits that differ from the original design, averaged
over random wrong keys and random stimulus.  Combinational schemes are
measured on the combinational view; GK schemes are measured where their
corruption actually lives — the timing-accurate sequential chip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..locking.base import LockedCircuit
from ..netlist.compiled import compile_circuit
from ..netlist.transform import extract_combinational
from ..sim.harness import compare_with_original, random_input_sequence

__all__ = ["CorruptionReport", "combinational_corruption",
           "sequential_corruption"]


@dataclass(frozen=True)
class CorruptionReport:
    """Average wrong-key output corruption of one locked design."""

    scheme: str
    wrong_keys_sampled: int
    observations: int  # output bits compared in total
    corrupted: int  # of which differed from the original

    @property
    def rate(self) -> float:
        return self.corrupted / self.observations if self.observations else 0.0

    def __str__(self) -> str:
        return (
            f"{self.scheme}: {100 * self.rate:.2f}% of output bits corrupted "
            f"({self.wrong_keys_sampled} wrong keys)"
        )


def combinational_corruption(
    locked: LockedCircuit,
    wrong_keys: int = 8,
    patterns_per_key: int = 32,
    rng: Optional[random.Random] = None,
) -> CorruptionReport:
    """Zero-delay corruption of a (possibly sequential) locked design.

    Measures the combinational view — the right lens for XOR/SARLock/
    Anti-SAT whose corruption is Boolean.  (A GK measured this way shows
    its *constant-mode* corruption, i.e. what an unlicensed user who
    straps the key wires would see.)
    """
    rng = rng or random.Random(0)
    original = locked.original
    comb_orig = (
        extract_combinational(original).circuit
        if original.flip_flops()
        else original
    )
    comb_lock = (
        extract_combinational(locked.circuit).circuit
        if locked.circuit.flip_flops()
        else locked.circuit
    )
    output_map = list(zip(comb_lock.outputs, comb_orig.outputs))
    observations = corrupted = 0
    for _ in range(wrong_keys):
        key = locked.random_wrong_key(rng)
        patterns = [
            {net: rng.randint(0, 1) for net in comb_orig.inputs}
            for _ in range(patterns_per_key)
        ]
        want_all = compile_circuit(comb_orig).query_outputs(patterns)
        got_all = compile_circuit(comb_lock).query_outputs(
            [dict(pattern, **key) for pattern in patterns]
        )
        for want, got in zip(want_all, got_all):
            for net_l, net_o in output_map:
                observations += 1
                if got[net_l] != want[net_o]:
                    corrupted += 1
    return CorruptionReport(
        scheme=locked.scheme,
        wrong_keys_sampled=wrong_keys,
        observations=observations,
        corrupted=corrupted,
    )


def sequential_corruption(
    locked: LockedCircuit,
    clock_period: float,
    wrong_keys: int = 4,
    cycles: int = 10,
    rng: Optional[random.Random] = None,
) -> CorruptionReport:
    """Timing-accurate corruption: the chip with a wrong key on the
    bench, outputs and state compared against the original cycle by
    cycle.  This is where GK corruption manifests (the glitch level)."""
    rng = rng or random.Random(0)
    observations = corrupted = 0
    for _ in range(wrong_keys):
        key = locked.random_wrong_key(rng)
        seq = random_input_sequence(locked.original, cycles, rng)
        result = compare_with_original(
            locked.original, locked.circuit, clock_period, seq, key
        )
        per_cycle = len(locked.original.outputs) + len(
            locked.original.flip_flops()
        )
        observations += result.cycles * per_cycle
        corrupted += result.mismatch_count
    return CorruptionReport(
        scheme=locked.scheme,
        wrong_keys_sampled=wrong_keys,
        observations=observations,
        corrupted=corrupted,
    )
