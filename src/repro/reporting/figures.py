"""Regeneration of the paper's timing figures (Figs. 4, 6, 7, 9).

Each function simulates the relevant structure with the event-driven
simulator and returns both the raw waveform data (for assertions) and
an ASCII timing diagram (for bench output), reproducing the paper's
diagrams from live simulation rather than drawings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.gk import build_gk_demo, ideal_gk_library
from ..core.keygen import insert_keygen
from ..core.timing_rules import (
    TriggerWindow,
    trigger_window_off_level,
    trigger_window_on_level,
)
from ..netlist.circuit import Circuit
from ..sim.eventsim import EventSimulator, SimulationResult
from ..sim.waveform import Pulse, Waveform, render_waveforms

__all__ = [
    "Figure",
    "figure4_gk_waveform",
    "figure6_keygen_waveform",
    "figure7_scenarios",
    "figure9_trigger_windows",
]


@dataclass
class Figure:
    """A regenerated figure: data series plus an ASCII rendering."""

    title: str
    diagram: str
    data: Dict[str, object]


def figure4_gk_waveform(
    da: float = 2.0,
    db: float = 3.0,
    x_value: int = 1,
    rise_at: float = 3.0,
    fall_at: float = 11.0,
    horizon: float = 16.0,
) -> Figure:
    """Fig. 4: the idealized GK's internal signals under key transitions."""
    circuit = build_gk_demo(da, db, "3a")
    sim = EventSimulator(circuit)
    sim.set_initial("x", x_value)
    sim.drive("key", [(rise_at, 1), (fall_at, 0)], initial=0)
    result = sim.run(horizon)
    nets = ["x", "key", "a_out", "b_out", "y"]
    diagram = render_waveforms(
        [result.waveforms[n] for n in nets], 0.0, horizon, resolution=0.5
    )
    glitches = result.waveforms["y"].pulses(x_value, 0.0, horizon)
    return Figure(
        title=f"Fig. 4 — GK signals (x={x_value}, DA={da}ns, DB={db}ns)",
        diagram=diagram,
        data={
            "glitches": [(p.start, p.end, p.length) for p in glitches],
            "y_changes": result.waveforms["y"].changes,
        },
    )


def figure6_keygen_waveform(
    da: float = 3.0,
    db: float = 6.0,
    period: float = 16.0,
    cycles: int = 3,
) -> Figure:
    """Fig. 6: KEYGEN ``key_out`` for the four (k1, k2) assignments.

    Uses the idealized (zero-gate-delay) library so the transition
    shifts are exactly DA and DB, as drawn in the paper.
    """
    rows: List[Waveform] = []
    data: Dict[str, object] = {}
    for k1, k2 in ((0, 0), (1, 0), (0, 1), (1, 1)):
        lib = ideal_gk_library(da, db)
        circuit = Circuit(f"keygen_{k1}{k2}", lib, clock=None)
        circuit.set_clock("clk")
        k1_net = circuit.add_key_input("k1")
        k2_net = circuit.add_key_input("k2")
        structure = insert_keygen(circuit, k1_net, k2_net, da, db)
        circuit.add_output(structure.key_out)
        sim = EventSimulator(circuit)
        sim.initialize_ffs(0)
        sim.set_initial(k1_net, k1)
        sim.set_initial(k2_net, k2)
        sim.add_clock(period, cycles)
        result = sim.run(period * cycles)
        wf = result.waveforms[structure.key_out]
        wf.net = f"(k1,k2)=({k1},{k2})"
        rows.append(wf)
        data[f"key_out_{k1}{k2}"] = wf.changes
    diagram = render_waveforms(rows, 0.0, period * cycles, resolution=1.0,
                               label_width=14)
    return Figure(
        title=f"Fig. 6 — KEYGEN key_out (DA={da}ns, DB={db}ns)",
        diagram=diagram,
        data=data,
    )


def _single_gk_capture(
    trigger: float,
    glitch_length: float,
    period: float,
    setup: float,
    hold: float,
    x_value: int = 1,
) -> Tuple[SimulationResult, Circuit]:
    """One idealized GK feeding one FF, key transition at *trigger*."""
    d_mux = 0.0
    d_path = glitch_length - d_mux
    lib = ideal_gk_library(d_path, d_path)
    # Custom FF with requested setup/hold.
    from ..netlist.cells import Cell

    lib.add(
        Cell(
            name="DFF_T",
            function="DFF",
            inputs=("D", "CLK"),
            output="Q",
            area=1.0,
            delay=0.0,
            setup=setup,
            hold=hold,
        )
    )
    circuit = Circuit("fig7", lib)
    circuit.set_clock("clk")
    x = circuit.add_input("x")
    key = circuit.add_input("key")
    circuit.add_gate("u_a", "XNOR2_I", {"A": x, "B": key}, "arm_a")
    circuit.add_gate("u_da", "DELAY_A", {"A": "arm_a"}, "a_out")
    circuit.add_gate("u_b", "XOR2_I", {"A": x, "B": key}, "arm_b")
    circuit.add_gate("u_db", "DELAY_B", {"A": "arm_b"}, "b_out")
    circuit.add_gate(
        "u_mux", "MUX2_I", {"A": "a_out", "B": "b_out", "S": key}, "y"
    )
    circuit.add_gate("u_ff", "DFF_T", {"D": "y", "CLK": "clk"}, "q")
    circuit.add_output("q")
    sim = EventSimulator(circuit)
    sim.initialize_ffs(0)
    sim.set_initial(x, x_value)
    sim.drive(key, [(trigger, 1)], initial=0)
    sim.add_clock(period, 2)
    result = sim.run(2 * period)
    return result, circuit


def figure7_scenarios(
    period: float = 8.0,
    glitch_length: float = 3.0,
    setup: float = 1.0,
    hold: float = 1.0,
) -> Figure:
    """Fig. 7: the four violation-free transmission scenarios.

    (a) data on the glitch level — glitch covers the capture window;
    (b)/(c) glitch fully before/after the window — the steady level is
    captured; (d) constant key — glitchless.  All four must capture
    cleanly (no setup/hold violation).
    """
    capture = period
    # Eq. (5) window for the on-level scenario: the glitch must start
    # before the setup edge and end after the hold edge.
    on_level_trigger = (
        max(capture + hold - glitch_length, 0.0) + (capture - setup)
    ) / 2.0
    scenarios: List[Tuple[str, Optional[float]]] = [
        ("(a) on glitch level", on_level_trigger),
        ("(b) glitch before window", capture - setup - glitch_length - 0.5),
        ("(c) glitch after window", capture + hold + 0.5),
        ("(d) constant key", None),
    ]
    rows: List[Waveform] = []
    data: Dict[str, object] = {}
    for label, trigger in scenarios:
        if trigger is None:
            result, circuit = _single_gk_capture(
                10 * period, glitch_length, period, setup, hold
            )  # transition far beyond the window of interest
        else:
            result, circuit = _single_gk_capture(
                trigger, glitch_length, period, setup, hold
            )
        wf = result.waveforms["y"]
        wf.net = label[:13]
        rows.append(wf)
        captured = [s for s in result.samples if s.ff == "u_ff" and s.time == capture]
        data[label] = {
            "captured": captured[0].value if captured else None,
            "violations": len(result.violations),
        }
    diagram = render_waveforms(rows, 0.0, 1.8 * period, resolution=0.25,
                               label_width=14)
    return Figure(
        title=(
            f"Fig. 7 — transmission scenarios (Tclk={period}ns, "
            f"L={glitch_length}ns, setup=hold={setup}ns)"
        ),
        diagram=diagram,
        data=data,
    )


def figure9_trigger_windows(
    period: float = 8.0,
    setup: float = 1.0,
    hold: float = 1.0,
    glitch_length: float = 3.0,
    d_react: float = 0.0,
) -> Figure:
    """Fig. 9: the Eq. (5)/(6) trigger boundaries for the paper's example.

    Tclk = 8ns, setup = hold = 1ns, L = 3ns, T_j = 8ns: UB = 7ns,
    LB = 1ns.  Also sweeps actual trigger times through both windows in
    simulation and reports the capture outcome at each, confirming the
    boundaries empirically.
    """
    lb, ub = hold, period - setup
    capture = period
    on_window = trigger_window_on_level(
        t_j=capture,
        t_hold=hold,
        l_glitch=glitch_length,
        d_react=d_react,
        ub=ub,
        t_arrival=0.0,
        d_ready=glitch_length,
    )
    off_window = trigger_window_off_level(lb, ub, glitch_length, d_react)

    sweep: List[Tuple[float, object, int]] = []
    for step in range(1, 16):
        trigger = step * 0.5
        result, _ = _single_gk_capture(
            trigger, glitch_length, period, setup, hold
        )
        captured = [
            s for s in result.samples if s.ff == "u_ff" and s.time == capture
        ]
        sweep.append(
            (
                trigger,
                captured[0].value if captured else None,
                len(result.violations),
            )
        )
    lines = [
        f"Eq.(5) on-level window : ({on_window.earliest:.2f}, "
        f"{on_window.latest:.2f}) ns",
        f"Eq.(6) off-level window: ({off_window.earliest:.2f}, "
        f"{off_window.latest:.2f}) ns",
        f"{'trigger':>8}{'captured':>10}{'violations':>12}",
    ]
    for trigger, value, violations in sweep:
        lines.append(f"{trigger:>8.1f}{str(value):>10}{violations:>12}")
    return Figure(
        title=(
            f"Fig. 9 — trigger windows (Tclk={period}ns, L={glitch_length}ns, "
            f"setup=hold={setup}ns)"
        ),
        diagram="\n".join(lines),
        data={
            "on_window": (on_window.earliest, on_window.latest),
            "off_window": (off_window.earliest, off_window.latest),
            "sweep": sweep,
        },
    )
