"""Switching-activity estimation (a dynamic-power proxy).

Sec. III opens with "when the length of a glitch is adjustable by
designers, a glitch is not a waste anymore" — glitches normally only
waste power.  A GK-locked design deliberately adds one glitch per
encrypted flip-flop per cycle (plus a KEYGEN toggle), so its dynamic
power rises even though its logical behaviour is unchanged.  This
module measures that cost the standard way: count net transitions per
clock cycle in event simulation and weight each by the driven
capacitance proxy (fanout count + 1).

Used by the power-overhead ablation bench; also a generally useful
profiling tool for any circuit in the repo.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..sim.harness import simulate_sequential
from ..sim.logic import LogicValue

__all__ = ["ActivityReport", "switching_activity"]


@dataclass(frozen=True)
class ActivityReport:
    """Transition counts from one simulation run."""

    circuit_name: str
    cycles: int
    transitions: int  # total net value changes in the measured window
    weighted: float  # transitions weighted by fanout+1 (capacitance proxy)
    per_net: Dict[str, int]

    @property
    def transitions_per_cycle(self) -> float:
        return self.transitions / self.cycles if self.cycles else 0.0

    @property
    def weighted_per_cycle(self) -> float:
        return self.weighted / self.cycles if self.cycles else 0.0

    def busiest(self, count: int = 5):
        """The most active nets, (net, transitions), busiest first."""
        ranked = sorted(self.per_net.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:count]


def switching_activity(
    circuit: Circuit,
    clock_period: float,
    input_sequence: Sequence[Mapping[str, LogicValue]],
    key: Optional[Mapping[str, LogicValue]] = None,
    settle_cycles: int = 1,
) -> ActivityReport:
    """Count net transitions over the input sequence.

    The first *settle_cycles* cycles are excluded (power-up settling).
    The clock net itself is excluded — its tree is not modeled — but
    every data net, including the GK/KEYGEN internals, is counted.
    """
    trace = simulate_sequential(circuit, clock_period, input_sequence,
                                key=key)
    start = settle_cycles * clock_period
    end = len(input_sequence) * clock_period
    per_net: Dict[str, int] = {}
    weighted = 0.0
    for net, waveform in trace.result.waveforms.items():
        if net == circuit.clock:
            continue
        count = sum(1 for t, _v in waveform.changes if start <= t < end)
        if count:
            per_net[net] = count
            weighted += count * (len(circuit.fanout_pins(net)) + 1)
    return ActivityReport(
        circuit_name=circuit.name,
        cycles=len(input_sequence) - settle_cycles,
        transitions=sum(per_net.values()),
        weighted=weighted,
        per_net=per_net,
    )
