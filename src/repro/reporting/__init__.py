"""Experiment harnesses: tables and figure regeneration."""

from .tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    Table1Row,
    Table2Row,
    format_table1,
    format_table2,
    table1_row,
    table2_row,
)
from .corruption import (
    CorruptionReport,
    combinational_corruption,
    sequential_corruption,
)
from .activity import ActivityReport, switching_activity
from .leaderboard import (
    LeaderboardRow,
    build_leaderboard,
    format_leaderboard,
    leaderboard_markdown,
)
from .summary import reproduce
from .figures import (
    Figure,
    figure4_gk_waveform,
    figure6_keygen_waveform,
    figure7_scenarios,
    figure9_trigger_windows,
)

__all__ = [
    "PAPER_TABLE1", "PAPER_TABLE2", "Table1Row", "Table2Row",
    "format_table1", "format_table2", "table1_row", "table2_row",
    "CorruptionReport", "combinational_corruption", "sequential_corruption",
    "ActivityReport", "switching_activity",
    "LeaderboardRow", "build_leaderboard", "format_leaderboard",
    "leaderboard_markdown",
    "reproduce",
    "Figure", "figure4_gk_waveform", "figure6_keygen_waveform",
    "figure7_scenarios", "figure9_trigger_windows",
]
