"""Arena leaderboard: scheme x attack aggregates, table and markdown.

Built *only* from cell payload data (the cached
:class:`~repro.attacks.outcome.AttackOutcome` dicts and the skip
list), with fixed sort order and fixed float formatting — so a resumed
arena run renders a leaderboard byte-identical to an uninterrupted
one: the payloads replay from the store/cache, and nothing
run-dependent (timestamps, worker counts, completion order) enters the
text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arena.runner import ArenaResult

__all__ = [
    "LeaderboardRow",
    "build_leaderboard",
    "format_leaderboard",
    "leaderboard_markdown",
]


@dataclass(frozen=True)
class LeaderboardRow:
    """Aggregate of one (scheme, attack) pair across its cells."""

    scheme: str
    attack: str
    cells: int
    errors: int
    #: cells where the attack's own success predicate held
    successes: int
    #: cells whose recovered key equivalence-checked correct
    recovered: int
    mean_queries: Optional[float]
    mean_wall: Optional[float]
    mean_corruption: Optional[float]

    @property
    def recovery_rate(self) -> Optional[float]:
        scored = self.cells - self.errors
        return self.recovered / scored if scored else None

    @property
    def success_rate(self) -> Optional[float]:
        scored = self.cells - self.errors
        return self.successes / scored if scored else None


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def build_leaderboard(result: "ArenaResult") -> List[LeaderboardRow]:
    """Aggregate outcomes per (scheme, attack), sorted by recovery rate
    descending (strongest attack first), then name."""
    groups: Dict[Tuple[str, str], List[Optional[Mapping[str, Any]]]] = {}
    for cell, outcome in result.outcomes():
        groups.setdefault((cell.scheme, cell.attack), []).append(outcome)

    rows: List[LeaderboardRow] = []
    for (scheme, attack), outcomes in groups.items():
        scored = [o for o in outcomes if o is not None]
        rows.append(
            LeaderboardRow(
                scheme=scheme,
                attack=attack,
                cells=len(outcomes),
                errors=len(outcomes) - len(scored),
                successes=sum(1 for o in scored if o.get("success")),
                recovered=sum(1 for o in scored if o.get("key_correct")),
                mean_queries=_mean(
                    [float(o.get("oracle_queries", 0)) for o in scored]
                ),
                mean_wall=_mean(
                    [float(o.get("wall_time", 0.0)) for o in scored]
                ),
                mean_corruption=_mean(
                    [
                        float(o["corruption"])
                        for o in scored
                        if o.get("corruption") is not None
                    ]
                ),
            )
        )
    rows.sort(
        key=lambda row: (
            -(row.recovery_rate if row.recovery_rate is not None else -1.0),
            row.scheme,
            row.attack,
        )
    )
    return rows


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 100.0:.0f}%"


def _fmt_float(value: Optional[float], digits: int = 2) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def format_leaderboard(result: "ArenaResult") -> str:
    """Fixed-width leaderboard plus the explicit skip list."""
    rows = build_leaderboard(result)
    lines = [
        f"arena: {result.scenario.name} — "
        f"{len(result.cells)} cells run, {len(result.skipped)} skipped",
        "",
        f"{'scheme':<12}{'attack':<18}{'cells':>6}{'err':>5}"
        f"{'success':>9}{'recov.':>8}{'queries':>9}{'wall(s)':>9}"
        f"{'corrupt':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.scheme:<12}{row.attack:<18}{row.cells:>6}"
            f"{row.errors:>5}{_fmt_rate(row.success_rate):>9}"
            f"{_fmt_rate(row.recovery_rate):>8}"
            f"{_fmt_float(row.mean_queries, 1):>9}"
            f"{_fmt_float(row.mean_wall):>9}"
            f"{_fmt_float(row.mean_corruption, 3):>9}"
        )
    if result.skipped:
        lines.append("")
        lines.append("skipped cells:")
        for cell, reason in result.skipped:
            lines.append(f"  {cell.describe()}: {reason}")
    if result.expectation_failures:
        lines.append("")
        lines.append("FAILED expectations:")
        for cell, problem in result.expectation_failures:
            lines.append(f"  {cell.describe()}: {problem}")
    return "\n".join(lines)


def leaderboard_markdown(result: "ArenaResult") -> str:
    """The same leaderboard as a GitHub-flavored markdown document."""
    rows = build_leaderboard(result)
    lines = [
        f"# Arena leaderboard: {result.scenario.name}",
        "",
        f"{len(result.cells)} cells run, {len(result.skipped)} skipped.",
        "",
        "| scheme | attack | cells | errors | success | recovery "
        "| mean queries | mean wall (s) | mean corruption |",
        "|---|---|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for row in rows:
        lines.append(
            f"| {row.scheme} | {row.attack} | {row.cells} | {row.errors} "
            f"| {_fmt_rate(row.success_rate)} "
            f"| {_fmt_rate(row.recovery_rate)} "
            f"| {_fmt_float(row.mean_queries, 1)} "
            f"| {_fmt_float(row.mean_wall)} "
            f"| {_fmt_float(row.mean_corruption, 3)} |"
        )
    if result.skipped:
        lines.extend(["", "## Skipped cells", ""])
        for cell, reason in result.skipped:
            lines.append(f"- `{cell.describe()}` — {reason}")
    if result.expectation_failures:
        lines.extend(["", "## Failed expectations", ""])
        for cell, problem in result.expectation_failures:
            lines.append(f"- `{cell.describe()}` — {problem}")
    lines.append("")
    return "\n".join(lines)
