"""One-shot paper reproduction: everything, in one report.

:func:`reproduce` runs the full evaluation — Table I, Table II, the four
timing figures, and the attack matrix — and returns a single formatted
report, so ``python -m repro reproduce`` (or one library call) replays
the paper end to end.  ``fast=True`` trims the expensive SAT work to the
smallest benchmark.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional

from ..attacks.oracle import CombinationalOracle
from ..attacks.removal import removal_attack
from ..attacks.sat_attack import sat_attack, verify_key_against_oracle
from ..bench.iwls import BENCHMARKS, iwls_benchmark
from ..locking.base import LockedCircuit
from ..locking.sarlock import SarLock
from ..locking.xor_lock import XorLock
from .figures import (
    figure4_gk_waveform,
    figure6_keygen_waveform,
    figure7_scenarios,
    figure9_trigger_windows,
)
from .tables import format_table1, format_table2

__all__ = ["reproduce"]


def _campaign_tables(
    seed: int, jobs: int, cache_dir: Optional[str]
) -> tuple:
    """Regenerate both tables on the campaign engine.

    Cell results are identical to the serial :func:`table1_row` /
    :func:`table2_row` path (same seeds, same flows), so ``jobs`` only
    changes the wall-clock, never a number in the report.
    """
    from ..campaign import CampaignConfig, CampaignMatrix, run_campaign
    from .tables import table1_row_from_dict, table2_rows_from_cells

    config = CampaignConfig(jobs=jobs, cache_dir=cache_dir)
    result1 = run_campaign(CampaignMatrix.table1(BENCHMARKS, seed=seed), config)
    result2 = run_campaign(
        CampaignMatrix.table2(BENCHMARKS, seed=seed), config
    )
    failures = result1.failed() + result2.failed()
    if failures:
        details = "; ".join(
            f"{r['kind']}{sorted(r['params'].items())}: {r['error']}"
            for r in failures
        )
        raise RuntimeError(f"table campaign failed: {details}")
    rows1 = [
        table1_row_from_dict(record["payload"]["row"])
        for record in result1.ordered()
    ]
    cells = {
        (r["params"]["benchmark"], r["params"]["config"]):
            r["payload"]["overhead"]
        for r in result2.ordered()
    }
    return rows1, table2_rows_from_cells(cells, list(BENCHMARKS))


def reproduce(
    fast: bool = True,
    echo: Optional[Callable[[str], None]] = None,
    seed: int = 2019,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> str:
    """Regenerate the paper's evaluation; returns the full report text.

    With *echo* (e.g. ``print``) sections stream as they finish.  *fast*
    restricts the SAT-attack experiment to s1238 and skips the larger
    attack sweeps (the bench suite covers those exhaustively).  *jobs*
    fans the table sweeps out over that many worker processes (0 = one
    per core); the report is byte-identical at any worker count.
    """
    sections: List[str] = []

    def emit(text: str) -> None:
        sections.append(text)
        if echo is not None:
            echo(text)

    start = time.time()
    emit("=" * 72)
    emit("A Glitch Key-Gate for Logic Locking (SOCC 2019) — reproduction")
    emit("=" * 72)

    instances = {name: iwls_benchmark(name, seed=seed) for name in BENCHMARKS}

    rows1, rows2 = _campaign_tables(seed, jobs, cache_dir)
    emit("\n## Table I — available FFs for GK encryption\n")
    emit(format_table1(rows1))

    emit("\n## Table II — overhead of GK encryption\n")
    emit(format_table2(rows2))

    for figure in (
        figure4_gk_waveform(),
        figure6_keygen_waveform(),
        figure7_scenarios(),
        figure9_trigger_windows(),
    ):
        emit(f"\n## {figure.title}\n")
        emit(figure.diagram)

    emit("\n## Sec. VI — SAT attack\n")
    from ..core.flow import GkLock, expose_gk_keys

    attack_benches = ["s1238"] if fast else ["s1238", "s5378", "s9234"]
    for name in attack_benches:
        inst = instances[name]
        locked = GkLock(inst.clock).lock(inst.circuit, 8, random.Random(21))
        exposed = expose_gk_keys(locked)
        oracle = CombinationalOracle(inst.circuit)
        result = sat_attack(exposed, oracle)
        accuracy = verify_key_against_oracle(
            exposed, oracle, result.key, samples=16
        )
        emit(
            f"{name}: GK-locked -> {result.iterations} DIPs, UNSAT at first "
            f"iteration = {result.unsat_at_first_iteration}, recovered-key "
            f"accuracy {accuracy:.2f}  (the attack is invalidated)"
        )
    control = XorLock().lock(instances["s1238"].circuit, 8, random.Random(22))
    oracle = CombinationalOracle(instances["s1238"].circuit)
    result = sat_attack(control.circuit, oracle)
    emit(
        f"s1238: XOR-locked control -> cracked in {result.iterations} DIPs "
        f"(exact key: {result.key == control.key})"
    )

    emit("\n## Sec. V-C — removal attack\n")
    rng = random.Random(5)
    sar = SarLock().lock(instances["s1238"].circuit, 8, rng)
    sar_result = removal_attack(sar, samples=300, rng=random.Random(6))
    gk = GkLock(instances["s1238"].clock).lock(
        instances["s1238"].circuit, 8, rng
    )
    gk_view = LockedCircuit(
        circuit=expose_gk_keys(gk),
        original=instances["s1238"].circuit,
        key={},
        scheme="gk",
    )
    gk_result = removal_attack(gk_view, samples=300, rng=random.Random(6))
    emit(f"SARLock: removed={sar_result.success}   "
         f"GK: removed={gk_result.success}  "
         "(point functions fall, the GK does not)")

    emit(f"\n[reproduced in {time.time() - start:.0f}s; see EXPERIMENTS.md "
         "for the full paper-vs-measured record]")
    return "\n".join(sections)
