"""Table I and Table II harnesses.

These functions compute and format the paper's two tables on our
calibrated benchmark stand-ins; the pytest-benchmark modules under
``benchmarks/`` call them and print the rows next to the paper's
numbers (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.iwls import BenchmarkInstance, iwls_benchmark
from ..core.flow import GkLock
from ..core.insertion import available_ffs
from ..locking.base import LockingError
from ..locking.encrypt_ff import select_encrypt_ff_group
from ..locking.hybrid import HybridGkXor
from ..netlist.stats import overhead

__all__ = [
    "Table1Row",
    "table1_row",
    "table1_row_from_dict",
    "format_table1",
    "Table2Row",
    "table2_cell",
    "table2_row",
    "table2_rows_from_cells",
    "lock_table2_config",
    "format_table2",
    "table1_aggregate",
    "table2_aggregate",
    "TABLE2_CONFIGS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
]

#: Table II configuration order (columns of the paper's table).
TABLE2_CONFIGS: Tuple[str, ...] = ("gk4", "gk8", "gk16", "hybrid")

#: Paper Table I: bench -> (cells, FFs, available FFs, coverage %, [4] count)
PAPER_TABLE1: Dict[str, Tuple[int, int, int, float, int]] = {
    "s1238": (341, 18, 16, 88.89, 4),
    "s5378": (775, 163, 104, 63.80, 89),
    "s9234": (613, 145, 74, 51.03, 59),
    "s13207": (901, 330, 185, 56.06, 36),
    "s15850": (447, 134, 58, 43.28, 51),
    "s38417": (5397, 1564, 1037, 66.30, 920),
    "s38584": (5304, 1168, 924, 79.11, 105),
}

#: Paper Table II: bench -> {config: (cell OH %, area OH %)}; None = "-"
PAPER_TABLE2: Dict[str, Dict[str, Optional[Tuple[float, float]]]] = {
    "s1238": {"gk4": (22.87, 38.51), "gk8": None, "gk16": None, "hybrid": None},
    "s5378": {"gk4": (10.06, 9.12), "gk8": (17.29, 16.93),
              "gk16": (33.03, 37.91), "hybrid": (21.68, 19.65)},
    "s9234": {"gk4": (8.81, 8.54), "gk8": (19.90, 20.49),
              "gk16": (38.34, 42.37), "hybrid": (21.53, 21.78)},
    "s13207": {"gk4": (6.77, 5.79), "gk8": (15.09, 11.10),
               "gk16": (29.97, 23.10), "hybrid": (13.65, 11.08)},
    "s15850": {"gk4": (15.44, 9.30), "gk8": (28.41, 21.23),
               "gk16": (54.59, 42.76), "hybrid": (33.11, 25.46)},
    "s38417": {"gk4": (0.74, 1.71), "gk8": (2.17, 0.66),
               "gk16": (4.22, 4.32), "hybrid": (2.20, 0.66)},
    "s38584": {"gk4": (1.69, 1.80), "gk8": (2.93, 2.92),
               "gk16": (5.64, 6.20), "hybrid": (3.20, 3.26)},
}


@dataclass(frozen=True)
class Table1Row:
    """One measured row of Table I."""

    bench: str
    cells: int
    flip_flops: int
    available: int
    coverage: float  # %
    encrypt_ff_group: int  # [4]'s selection from the available FFs


def table1_row(
    name: str,
    instance: Optional[BenchmarkInstance] = None,
    glitch_length: float = 1.0,
) -> Table1Row:
    """Measure the Table I quantities for one benchmark."""
    instance = instance or iwls_benchmark(name)
    circuit, clock = instance.circuit, instance.clock
    stats = circuit.stats()
    plans = available_ffs(circuit, clock, glitch_length)
    feasible = sorted(ff for ff, plan in plans.items() if plan.feasible)
    group = select_encrypt_ff_group(circuit, feasible)
    coverage = 100.0 * len(feasible) / max(1, stats.num_flip_flops)
    return Table1Row(
        bench=name,
        cells=stats.num_cells,
        flip_flops=stats.num_flip_flops,
        available=len(feasible),
        coverage=coverage,
        encrypt_ff_group=len(group),
    )


def table1_row_from_dict(data: Dict) -> Table1Row:
    """Rehydrate a row from its JSON form (campaign payloads)."""
    return Table1Row(**data)


def format_table1(rows: Sequence[Table1Row], with_paper: bool = True) -> str:
    header = (
        f"{'Bench.':<9}{'Cell':>6}{'FF':>6}{'Ava.FF':>8}{'Cov.(%)':>9}"
        f"{'Ava.FF[4]':>11}"
    )
    if with_paper:
        header += f"{'paper Cov.(%)':>15}"
    lines = [header]
    total_cov = 0.0
    for row in rows:
        line = (
            f"{row.bench:<9}{row.cells:>6}{row.flip_flops:>6}"
            f"{row.available:>8}{row.coverage:>9.2f}{row.encrypt_ff_group:>11}"
        )
        if with_paper and row.bench in PAPER_TABLE1:
            line += f"{PAPER_TABLE1[row.bench][3]:>15.2f}"
        lines.append(line)
        total_cov += row.coverage
    if rows:
        avg = total_cov / len(rows)
        line = f"{'Avg.':<9}{'':>6}{'':>6}{'':>8}{avg:>9.2f}"
        if with_paper:
            paper_avg = sum(v[3] for v in PAPER_TABLE1.values()) / len(PAPER_TABLE1)
            line += f"{'':>11}{paper_avg:>15.2f}"
        lines.append(line)
    return "\n".join(lines)


@dataclass(frozen=True)
class Table2Row:
    """Overheads of one benchmark across the paper's configurations.

    Entries are (cell OH %, area OH %) or None where the configuration
    does not fit (the paper prints "-" for s1238 beyond 4 GKs).
    """

    bench: str
    gk4: Optional[Tuple[float, float]]
    gk8: Optional[Tuple[float, float]]
    gk16: Optional[Tuple[float, float]]
    hybrid: Optional[Tuple[float, float]]  # 8 GKs + 16 XORs


def lock_table2_config(
    circuit,
    clock,
    config: str,
    seed: int = 2019,
    run_pnr: bool = False,
):
    """Lock *circuit* in one Table II configuration.

    Returns the :class:`~repro.locking.base.LockedCircuit`, or ``None``
    where the configuration does not fit (the paper's "-").  The seed
    derivation matches the original row harness bit for bit, so cell
    results computed one at a time — e.g. by campaign workers — equal
    the ones a whole-row computation produces.
    """
    if config == "hybrid":
        try:
            return HybridGkXor(clock, run_pnr=run_pnr).lock(
                circuit, 32, random.Random(seed + 99)
            )
        except LockingError:
            return None
    try:
        num_bits = {"gk4": 8, "gk8": 16, "gk16": 32}[config]
    except KeyError:
        raise ValueError(
            f"unknown Table II config {config!r}; "
            f"choose from {', '.join(TABLE2_CONFIGS)}"
        ) from None
    try:
        return GkLock(clock, run_pnr=run_pnr).lock(
            circuit, num_bits, random.Random(seed + num_bits)
        )
    except LockingError:
        return None


def table2_cell(
    name: str,
    config: str,
    instance: Optional[BenchmarkInstance] = None,
    seed: int = 2019,
    run_pnr: bool = False,
) -> Optional[Tuple[float, float]]:
    """One (benchmark, configuration) cell of Table II."""
    instance = instance or iwls_benchmark(name)
    locked = lock_table2_config(
        instance.circuit, instance.clock, config, seed=seed, run_pnr=run_pnr
    )
    if locked is None:
        return None
    oh = overhead(instance.circuit, locked.circuit)
    return (oh.cell_percent, oh.area_percent)


def table2_row(
    name: str,
    instance: Optional[BenchmarkInstance] = None,
    seed: int = 2019,
    run_pnr: bool = False,
) -> Table2Row:
    """Lock one benchmark in all four Table II configurations."""
    instance = instance or iwls_benchmark(name)
    cells = {
        config: table2_cell(name, config, instance=instance, seed=seed,
                            run_pnr=run_pnr)
        for config in TABLE2_CONFIGS
    }
    return Table2Row(bench=name, **cells)


def table2_rows_from_cells(
    cells: Dict[Tuple[str, str], Optional[Sequence[float]]],
    benchmarks: Sequence[str],
) -> List[Table2Row]:
    """Assemble rows from per-cell results keyed ``(bench, config)``.

    This is the campaign aggregation path: workers compute cells
    independently (in any order, on any number of processes) and the
    rows come out identical to :func:`table2_row`'s.
    """
    rows = []
    for name in benchmarks:
        values = {}
        for config in TABLE2_CONFIGS:
            cell = cells.get((name, config))
            values[config] = None if cell is None else tuple(cell)
        rows.append(Table2Row(bench=name, **values))
    return rows


def format_table2(rows: Sequence[Table2Row], with_paper: bool = True) -> str:
    configs = [
        ("gk4", "4 GKs / 8 keys"),
        ("gk8", "8 GKs / 16 keys"),
        ("gk16", "16 GKs / 32 keys"),
        ("hybrid", "8 GKs + 16 XORs"),
    ]
    lines = [
        f"{'Bench.':<9}"
        + "".join(f"{label:>22}" for _key, label in configs)
    ]
    lines.append(
        f"{'':<9}" + "".join(f"{'cell% / area%':>22}" for _ in configs)
    )
    sums = {key: [0.0, 0.0, 0] for key, _ in configs}
    for row in rows:
        cells = [f"{row.bench:<9}"]
        for key, _label in configs:
            value = getattr(row, key)
            if value is None:
                cells.append(f"{'-':>22}")
            else:
                cells.append(f"{value[0]:>10.2f} /{value[1]:>9.2f}")
                sums[key][0] += value[0]
                sums[key][1] += value[1]
                sums[key][2] += 1
        lines.append("".join(cells))
    avg_cells = [f"{'Avg.':<9}"]
    for key, _label in configs:
        total_cell, total_area, count = sums[key]
        if count:
            avg_cells.append(
                f"{total_cell / count:>10.2f} /{total_area / count:>9.2f}"
            )
        else:
            avg_cells.append(f"{'-':>22}")
    lines.append("".join(avg_cells))
    if with_paper:
        paper_avg = {key: [0.0, 0.0, 0] for key, _ in configs}
        for bench_values in PAPER_TABLE2.values():
            for key, _ in configs:
                value = bench_values[key]
                if value is not None:
                    paper_avg[key][0] += value[0]
                    paper_avg[key][1] += value[1]
                    paper_avg[key][2] += 1
        row = [f"{'paper':<9}"]
        for key, _ in configs:
            c, a, n = paper_avg[key]
            row.append(f"{c / n:>10.2f} /{a / n:>9.2f}")
        lines.append("".join(row))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Canonical aggregates (golden snapshots + campaign determinism checks)
# ----------------------------------------------------------------------

def table1_aggregate(rows: Sequence[Table1Row]) -> Dict:
    """JSON-able canonical form of a Table I run.

    Serialized with ``sort_keys=True`` this is byte-stable across runs,
    worker counts, and cache states — the golden regression tests and
    the serial-vs-parallel determinism check both diff exactly this.
    """
    from dataclasses import asdict

    return {
        "table": "table1",
        "rows": [asdict(row) for row in rows],
        "text": format_table1(rows),
    }


def table2_aggregate(rows: Sequence[Table2Row]) -> Dict:
    """JSON-able canonical form of a Table II run (see above)."""
    def cell(value: Optional[Tuple[float, float]]):
        return None if value is None else [value[0], value[1]]

    return {
        "table": "table2",
        "rows": [
            {"bench": row.bench,
             **{config: cell(getattr(row, config))
                for config in TABLE2_CONFIGS}}
            for row in rows
        ],
        "text": format_table2(rows),
    }
