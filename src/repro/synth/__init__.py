"""Synthesis substrate (the Design Compiler stand-in)."""

from .optimize import (
    hash_structural,
    optimize,
    propagate_constants,
    simplify_inverters,
    sweep_dead_gates,
)
from .techmap import map_to_library, upsize_critical_cells
from .delay_synthesis import DelayChain, compose_delay, insert_delay_chain
from .resynth import SynthesisResult, resynthesize

__all__ = [
    "optimize",
    "propagate_constants",
    "simplify_inverters",
    "hash_structural",
    "sweep_dead_gates",
    "map_to_library",
    "upsize_critical_cells",
    "DelayChain",
    "compose_delay",
    "insert_delay_chain",
    "SynthesisResult",
    "resynthesize",
]
