"""Delay-element synthesis.

The GK and KEYGEN structures need concrete delays DA / DB on their
internal paths.  The paper realizes them by "setting design constraints
on the path" and letting Design Compiler "map delay elements from the
library" — chains of ordinary buffers/inverters, which it notes is "far
from being optimal" and the main source of area overhead (Sec. VI).

:func:`compose_delay` reproduces that mapping: a greedy largest-first
composition from the library's buffer menu that always *meets or
exceeds* the requested minimum delay (a min-delay constraint can
overshoot but never undershoot).  :func:`insert_delay_chain` instantiates
the chain into a circuit and returns the synthesized path metadata that
the insertion flow records (and the optimizer must protect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netlist.cells import Cell, CellLibrary
from ..netlist.circuit import Circuit

__all__ = ["DelayChain", "compose_delay", "insert_delay_chain"]

_EPSILON = 1e-9


@dataclass(frozen=True)
class DelayChain:
    """A synthesized delay path inside a circuit."""

    input_net: str
    output_net: str
    gate_names: Tuple[str, ...]
    target_delay: float
    achieved_delay: float
    area: float

    @property
    def num_cells(self) -> int:
        return len(self.gate_names)


def compose_delay(target: float, library: CellLibrary) -> List[Cell]:
    """Pick a buffer chain whose total delay >= *target*, greedily.

    Polarity is preserved: only non-inverting cells are used (inverters
    would come in pairs and our menu's smallest buffer is cheaper than
    two inverters).  Greedy largest-first mirrors how a constraint-driven
    mapper works and, like the real flow, is "far from optimal" — that
    inefficiency is part of what Table II measures.
    """
    if target < 0:
        raise ValueError(f"negative target delay {target}")
    menu = [
        c
        for c in library.delay_elements()
        if c.function == "BUF" and c.delay > _EPSILON
    ]
    if not menu:
        if target <= _EPSILON:
            return []
        raise ValueError(
            f"library {library.name!r} has no positive-delay buffers"
        )
    chain: List[Cell] = []
    remaining = target
    for cell in menu:  # sorted by delay descending
        while remaining - _EPSILON > 0 and cell.delay <= remaining + _EPSILON:
            chain.append(cell)
            remaining -= cell.delay
    if remaining > _EPSILON:
        chain.append(menu[-1])  # smallest buffer tops up the residue
    return chain


def insert_delay_chain(
    circuit: Circuit,
    from_net: str,
    target: float,
    prefix: str = "dly",
) -> DelayChain:
    """Drive a new net equal to *from_net* delayed by >= *target* ns.

    A zero *target* still inserts one minimal buffer so the returned net
    is distinct and the path is anchored (and protectable) in the
    netlist.
    """
    cells = compose_delay(target, circuit.library)
    if not cells:
        cells = [min(
            (c for c in circuit.library.delay_elements() if c.function == "BUF"),
            key=lambda c: c.delay,
        )]
    names: List[str] = []
    current = from_net
    achieved = 0.0
    area = 0.0
    for cell in cells:
        out = circuit.new_net(prefix)
        name = circuit.new_gate_name(prefix)
        circuit.add_gate(name, cell.name, {"A": current}, out)
        names.append(name)
        achieved += cell.delay
        area += cell.area
        current = out
    return DelayChain(
        input_net=from_net,
        output_net=current,
        gate_names=tuple(names),
        target_delay=target,
        achieved_delay=achieved,
        area=area,
    )
