"""Re-synthesis with design constraints.

One call that replays the paper's tool sequence on a (possibly edited)
netlist: logic optimization -> technology mapping -> timing repair ->
placement -> routing -> post-layout STA.  The *protected* set carries
the design constraints: gates on deliberately delayed paths (GK delay
elements, KEYGEN ADB arms) survive every pass untouched, which is how
the paper keeps Design Compiler / IC Compiler from "optimizing away" the
glitch generators (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from ..netlist.circuit import Circuit
from ..pnr.layout import Layout
from ..pnr.placer import place
from ..pnr.router import RoutingEstimate, route
from ..sta.clock import ClockSpec
from ..sta.timing import TimingAnalysis, analyze
from .optimize import optimize
from .techmap import map_to_library, upsize_critical_cells

__all__ = ["SynthesisResult", "resynthesize"]


@dataclass
class SynthesisResult:
    """Everything the flow produces for one netlist revision."""

    circuit: Circuit
    layout: Layout
    routing: RoutingEstimate
    timing: TimingAnalysis
    optimizations: int
    remapped: int
    upsized: int

    @property
    def meets_timing(self) -> bool:
        return not self.timing.setup_violations() and not self.timing.hold_violations()


def resynthesize(
    circuit: Circuit,
    clock: ClockSpec,
    protected: Iterable[str] = (),
    run_pnr: bool = True,
    refinement_passes: int = 2,
) -> SynthesisResult:
    """Optimize, map, repair, place, route, and re-time *circuit* in place.

    With ``run_pnr=False`` the layout step is skipped (zero wire delays),
    which the fast unit tests use.
    """
    guard = frozenset(protected)
    optimizations = optimize(circuit, protected=guard)
    remapped = map_to_library(circuit, protected=guard)
    upsized = upsize_critical_cells(circuit, clock, protected=guard)
    if run_pnr:
        layout = place(circuit, refinement_passes=refinement_passes)
        routing = route(layout)
    else:
        layout = Layout(circuit, {}, 0.0, 0.0, 1.0)
        routing = RoutingEstimate(wire_delay={}, total_hpwl=0.0)
    timing = analyze(circuit, clock, wire_delay=routing.wire_delay)
    return SynthesisResult(
        circuit=circuit,
        layout=layout,
        routing=routing,
        timing=timing,
        optimizations=optimizations,
        remapped=remapped,
        upsized=upsized,
    )
