"""Logic optimization passes (the Design Compiler stand-in).

Four classic netlist-level passes, each safe and semantics-preserving:

* constant propagation (TIE cells and constant-producing gates),
* inverter/buffer chain simplification,
* structural hashing (merging identical gates),
* dead-gate sweeping.

Every pass honours a *protected* gate set: gates that carry deliberate
design constraints — the GK delay chains — must survive re-synthesis,
exactly as the paper keeps its inserted delay elements alive by setting
design constraints on those paths (Sec. IV-B).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..netlist.circuit import Circuit, Gate, NetlistError
from ..netlist.compiled import compile_circuit
from ..obs.spans import trace_span

__all__ = ["optimize", "sweep_dead_gates", "propagate_constants",
           "simplify_inverters", "hash_structural"]


def _root_net(aliases: Dict[str, str], net: str) -> str:
    while net in aliases:
        net = aliases[net]
    return net


def _apply_aliases(circuit: Circuit, aliases: Dict[str, str]) -> None:
    """Rewire every reader of an aliased net to the alias root."""
    if not aliases:
        return
    for old in list(aliases):
        root = _root_net(aliases, old)
        if old != root:
            circuit.rewire_sinks(old, root)


def propagate_constants(
    circuit: Circuit, protected: FrozenSet[str] = frozenset()
) -> int:
    """Fold gates whose output is constant; returns #gates removed.

    Constants originate at TIE cells and propagate through controlling
    inputs (AND with 0, OR with 1, MUX with constant select, ...).
    Gates that become constant are replaced by a shared TIE cell.
    """
    changed = 0
    # Scan over the compiled schedule (same order as the object-graph
    # topo walk); the structural edits below invalidate it, but the scan
    # is complete by then.
    compiled = compile_circuit(circuit)
    const_of: Dict[str, int] = {}
    for i in range(compiled.num_gates):
        operands = [
            const_of.get(net) for net in compiled.fanin_name_tuples[i]
        ]
        value = _const_eval(compiled.functions[i], operands)
        if value is not None:
            const_of[compiled.out_names[i]] = value
    if not const_of:
        return 0
    tie_nets: Dict[int, str] = {}

    def tie(value: int) -> str:
        net = tie_nets.get(value)
        if net is None:
            net = circuit.new_net(f"const{value}")
            cell = "TIE1_X1" if value else "TIE0_X1"
            circuit.add_gate(circuit.new_gate_name("tie"), cell, {}, net)
            tie_nets[value] = net
        return net

    for net, value in const_of.items():
        driver = circuit.driver_of(net)
        if driver is None or driver.name in protected:
            continue
        if driver.function in ("TIE0", "TIE1"):
            continue
        replacement = tie(value)
        circuit.rewire_sinks(net, replacement)
        changed += 1
    return changed


def _const_eval(function: str, operands) -> Optional[int]:
    """Output value of a *function* cell if constant inputs force one."""
    f = function
    if f == "TIE0":
        return 0
    if f == "TIE1":
        return 1
    if f == "BUF":
        return operands[0]
    if f == "INV":
        return None if operands[0] is None else 1 - operands[0]
    if f in ("AND2", "NAND2"):
        if 0 in operands:
            return 0 if f == "AND2" else 1
        if operands[0] == 1 and operands[1] == 1:
            return 1 if f == "AND2" else 0
        return None
    if f in ("OR2", "NOR2"):
        if 1 in operands:
            return 1 if f == "OR2" else 0
        if operands[0] == 0 and operands[1] == 0:
            return 0 if f == "OR2" else 1
        return None
    if f in ("XOR2", "XNOR2"):
        if None in operands:
            return None
        val = operands[0] ^ operands[1]
        return val if f == "XOR2" else 1 - val
    if f == "MUX2":
        a, b, s = operands
        if s == 0:
            return a
        if s == 1:
            return b
        if a is not None and a == b:
            return a
        return None
    # MUX4/LUT constant folding is possible but rare; skip.
    return None


def simplify_inverters(
    circuit: Circuit, protected: FrozenSet[str] = frozenset()
) -> int:
    """Collapse INV(INV(x)) -> x and BUF(x) -> x; returns #gates bypassed.

    The gates themselves are left for :func:`sweep_dead_gates` (they may
    still drive a PO or a protected path).
    """
    changed = 0
    for gate in list(circuit.gates.values()):
        if gate.name in protected:
            continue
        if gate.function == "BUF":
            source = gate.pins["A"]
            if gate.output in circuit.outputs:
                continue  # keep PO buffers: they pin the output name
            circuit.rewire_sinks(gate.output, source, rewire_outputs=False)
            changed += 1
        elif gate.function == "INV":
            inner = circuit.driver_of(gate.pins["A"])
            if (
                inner is not None
                and inner.function == "INV"
                and inner.name not in protected
                and gate.output not in circuit.outputs
            ):
                circuit.rewire_sinks(
                    gate.output, inner.pins["A"], rewire_outputs=False
                )
                changed += 1
    return changed


def hash_structural(
    circuit: Circuit, protected: FrozenSet[str] = frozenset()
) -> int:
    """Merge gates computing the identical function of identical nets."""
    changed = 0
    seen: Dict[Tuple, str] = {}
    for gate in circuit.topological_order():
        if gate.name in protected or gate.function in ("TIE0", "TIE1"):
            continue
        operands = gate.input_nets()
        if gate.function in ("AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"):
            operands = tuple(sorted(operands))  # commutative
        key = (gate.cell.name, operands, gate.truth_table)
        existing = seen.get(key)
        if existing is None:
            seen[key] = gate.output
        elif gate.output not in circuit.outputs:
            circuit.rewire_sinks(gate.output, existing, rewire_outputs=False)
            changed += 1
    return changed


def sweep_dead_gates(
    circuit: Circuit, protected: FrozenSet[str] = frozenset()
) -> int:
    """Remove gates not feeding any PO or flip-flop; returns #removed."""
    live: Set[str] = set()
    stack = list(circuit.outputs)
    for ff in circuit.flip_flops():
        live.add(ff.name)
        stack.append(ff.pins["D"])
    for name in protected:
        if name in circuit.gates:
            live.add(name)
            stack.extend(circuit.gates[name].pins.values())
    while stack:
        net = stack.pop()
        driver = circuit.driver_of(net)
        if driver is None or driver.name in live:
            continue
        live.add(driver.name)
        if not driver.is_flip_flop:
            stack.extend(driver.pins.values())
        else:
            stack.append(driver.pins["D"])
    dead = [name for name in circuit.gates if name not in live]
    for name in dead:
        circuit.remove_gate(name)
    return len(dead)


def optimize(
    circuit: Circuit,
    protected: Iterable[str] = (),
    max_rounds: int = 10,
) -> int:
    """Run all passes to a fixpoint; returns total #changes.

    *protected* gates (delay chains, key gates under constraint) are
    never folded, bypassed, merged, or swept.
    """
    guard = frozenset(protected)
    total = 0
    with trace_span("synth.optimize", design=circuit.name,
                    protected=len(guard)) as span:
        for _ in range(max_rounds):
            changed = 0
            changed += propagate_constants(circuit, guard)
            changed += simplify_inverters(circuit, guard)
            changed += hash_structural(circuit, guard)
            changed += sweep_dead_gates(circuit, guard)
            total += changed
            if changed == 0:
                break
        circuit.validate()
        span.annotate(changes=total)
    return total
