"""Technology mapping.

Maps every gate of a circuit onto the cheapest library cell of the same
function (area-driven), optionally upsizing cells on timing-critical
paths (delay-driven repair).  Our circuits are born on library cells, so
this pass is what "synthesis" means when a design moves between
libraries or after edits introduce non-minimal cells.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from ..netlist.cells import CellLibrary
from ..netlist.circuit import Circuit
from ..sta.clock import ClockSpec
from ..sta.timing import analyze

__all__ = ["map_to_library", "upsize_critical_cells"]


def map_to_library(
    circuit: Circuit,
    library: Optional[CellLibrary] = None,
    protected: Iterable[str] = (),
) -> int:
    """Area-map: swap each gate to the smallest same-function cell.

    Protected gates (delay chains) keep their deliberately chosen cells.
    Returns the number of gates remapped.
    """
    library = library or circuit.library
    guard = frozenset(protected)
    changed = 0
    for gate in circuit.gates.values():
        if gate.name in guard:
            continue
        best = library.cheapest(gate.function)
        if best.name != gate.cell.name and best.inputs == gate.cell.inputs:
            circuit.replace_cell(gate.name, best)
            changed += 1
    circuit.library = library
    return changed


def upsize_critical_cells(
    circuit: Circuit,
    clock: ClockSpec,
    protected: Iterable[str] = (),
    max_passes: int = 4,
) -> int:
    """Greedy timing repair: upsize cells along violating paths.

    After area mapping some endpoints may miss setup; this swaps gates on
    the worst paths to faster same-function drive strengths until timing
    is met or no faster cell exists.  Returns the number of upsizes.
    """
    guard = frozenset(protected)
    total = 0
    for _ in range(max_passes):
        analysis = analyze(circuit, clock)
        violations = analysis.setup_violations()
        if not violations:
            break
        improved = False
        for endpoint in violations:
            for net in analysis.critical_path_to(endpoint.data_net):
                driver = circuit.driver_of(net)
                if driver is None or driver.name in guard:
                    continue
                candidates = [
                    c
                    for c in circuit.library.cells_for(driver.function)
                    if c.delay < driver.cell.delay and c.inputs == driver.cell.inputs
                ]
                if not candidates:
                    continue
                circuit.replace_cell(
                    driver.name, min(candidates, key=lambda c: c.delay)
                )
                total += 1
                improved = True
        if not improved:
            break
    return total
