"""Synthetic benchmark circuits calibrated to the paper's Table I."""

from .generator import GeneratorSpec, random_sequential_circuit
from .iwls import BENCHMARKS, BenchmarkInstance, benchmark_names, iwls_benchmark

__all__ = [
    "GeneratorSpec",
    "random_sequential_circuit",
    "BENCHMARKS",
    "BenchmarkInstance",
    "benchmark_names",
    "iwls_benchmark",
]
