"""Seeded random sequential circuit generation.

The paper evaluates on IWLS2005/ISCAS'89 netlists synthesized with a
proprietary library.  Those netlists cannot be redistributed here, so
experiments run on synthetic circuits *calibrated to the paper's own
post-synthesis statistics* (cell count, FF count; Table I).  The
generator produces realistic sequential structure:

* gates appear in topological order, so no combinational cycles;
* operand selection has a locality bias, producing a wide distribution
  of cone depths (some flip-flops see shallow logic, some deep) — the
  property Table I's "available FF" percentages hinge on;
* flip-flop D inputs and primary outputs prefer otherwise-unused nets,
  so the netlist carries almost no dead logic, like a synthesized one.

Everything is keyed by an integer seed: same arguments, same netlist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..netlist.cells import CellLibrary, default_library
from ..netlist.circuit import Circuit

__all__ = ["GeneratorSpec", "random_sequential_circuit"]

#: (function, weight) menu approximating post-synthesis gate mix.
#: Buffers are deliberately absent: a synthesized netlist only keeps
#: buffers for drive strength, which our delay model does not need, and
#: a redundancy-free netlist keeps the re-synthesis step of the locking
#: flows from shrinking the baseline (which would corrupt Table II).
_GATE_MIX: Tuple[Tuple[str, float], ...] = (
    ("NAND2", 0.28),
    ("NOR2", 0.15),
    ("AND2", 0.10),
    ("OR2", 0.10),
    ("INV", 0.19),
    ("XOR2", 0.07),
    ("XNOR2", 0.05),
    ("MUX2", 0.06),
)

_COMMUTATIVE = frozenset({"AND2", "NAND2", "OR2", "NOR2", "XOR2", "XNOR2"})


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of one synthetic benchmark."""

    name: str
    num_inputs: int
    num_outputs: int
    num_flip_flops: int
    num_combinational: int
    seed: int = 1
    locality: float = 0.75  # probability an operand comes from the recent window
    window: int = 24  # size of the recency window
    #: skew of flip-flop D connections toward deep (late-created) nets;
    #: 0 = uniform.  Real designs register the *ends* of logic cones, so
    #: endpoint arrival times skew high — this is what makes some FFs
    #: unavailable for GK insertion (Table I).
    ff_depth_bias: float = 2.0
    #: fold leftover dangling nets into an XOR reduction tree ending in
    #: one extra primary output, instead of promoting each to its own
    #: PO.  Keeps the interface narrow (``num_outputs + 1`` POs) for
    #: deep oracle circuits where per-pattern cost should be dominated
    #: by logic evaluation, not output marshalling — the regime the
    #: serving benchmark measures.  XOR preserves sensitivity: a flip on
    #: any folded net flips the tree output, so no logic goes dead.
    reduce_dangling: bool = False

    @property
    def num_cells(self) -> int:
        return self.num_flip_flops + self.num_combinational


def _pick_function(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for function, weight in _GATE_MIX:
        acc += weight
        if roll < acc:
            return function
    return _GATE_MIX[-1][0]


def random_sequential_circuit(
    spec: GeneratorSpec, library: Optional[CellLibrary] = None
) -> Circuit:
    """Generate a circuit matching *spec* exactly in cell and FF count."""
    if spec.num_inputs < 1 or spec.num_combinational < 1:
        raise ValueError("need at least one input and one gate")
    rng = random.Random(spec.seed)
    library = library or default_library()
    circuit = Circuit(spec.name, library)
    circuit.set_clock("clock")

    sources: List[str] = []
    for i in range(spec.num_inputs):
        sources.append(circuit.add_input(f"pi{i}"))
    ff_outputs = [f"ffq{i}" for i in range(spec.num_flip_flops)]
    # FF Q nets act as sources; the DFF gates are added once their D
    # nets exist.  Claim the names so nothing else drives them.
    for net in ff_outputs:
        circuit._claim_driver(net, "__ff_pending__")
    sources.extend(ff_outputs)

    produced: List[str] = list(sources)
    fanout_count = {net: 0 for net in produced}

    def pick_operand(exclude: Sequence[str] = ()) -> str:
        # Locality bias creates depth; occasionally reach back anywhere.
        for _ in range(8):
            if rng.random() < spec.locality and len(produced) > spec.window:
                net = produced[rng.randrange(len(produced) - spec.window, len(produced))]
            else:
                net = produced[rng.randrange(len(produced))]
            if net not in exclude:
                return net
        return produced[rng.randrange(len(produced))]

    # Signatures of already-created gates: the generated netlist must be
    # redundancy-free (no structural duplicates, no INV(INV(x))), so a
    # later re-synthesis pass finds nothing to shrink — like a netlist
    # that really came out of Design Compiler.
    signatures = set()
    inverter_of: dict = {}  # net -> its INV output, to refuse inv pairs

    def draw_gate():
        for _attempt in range(12):
            function = _pick_function(rng)
            if function == "INV":
                a = pick_operand()
                if a in inverter_of.values() or ("INV", (a,)) in signatures:
                    continue  # avoid INV chains / duplicate inverters
                return function, {"A": a}, [a], ("INV", (a,))
            if function == "MUX2":
                a = pick_operand()
                b = pick_operand(exclude=[a])
                s = pick_operand(exclude=[a, b])
                signature = ("MUX2", (a, b, s))
                if signature in signatures:
                    continue
                return function, {"A": a, "B": b, "S": s}, [a, b, s], signature
            a = pick_operand()
            b = pick_operand(exclude=[a])
            operands = tuple(sorted((a, b))) if function in _COMMUTATIVE else (a, b)
            signature = (function, operands)
            if signature in signatures:
                continue
            return function, {"A": a, "B": b}, [a, b], signature
        # Pathologically saturated draw: accept a (possibly duplicate)
        # two-input gate rather than loop forever.
        a = pick_operand()
        b = pick_operand(exclude=[a])
        return "NAND2", {"A": a, "B": b}, [a, b], ("NAND2", tuple(sorted((a, b))))

    for i in range(spec.num_combinational):
        function, pins, used, signature = draw_gate()
        signatures.add(signature)
        cell = library.cheapest(function)
        out = f"n{i}"
        if function == "INV":
            inverter_of[pins["A"]] = out
        circuit.add_gate(f"g{i}", cell.name, pins, out)
        for net in used:
            fanout_count[net] = fanout_count.get(net, 0) + 1
        produced.append(out)
        fanout_count[out] = 0

    def dangling_first(
        count: int, exclude: Sequence[str] = (), depth_bias: float = 0.0
    ) -> List[str]:
        """Pick *count* distinct nets, exhausting unused nets first.

        With *depth_bias* > 0, selection within each candidate list is
        skewed toward late-created (deep) nets via inverse-transform
        sampling of u^(1/(1+bias)).
        """
        banned = set(exclude)
        unused = [
            net
            for net in produced
            if fanout_count.get(net, 0) == 0 and net not in banned
            and not net.startswith(("pi", "ffq"))
        ]

        def biased_pop(candidates: List[str]) -> str:
            if depth_bias <= 0:
                return candidates.pop(rng.randrange(len(candidates)))
            position = rng.random() ** (1.0 / (1.0 + depth_bias))
            index = min(len(candidates) - 1, int(position * len(candidates)))
            return candidates.pop(index)

        chosen: List[str] = []
        while len(chosen) < count and unused:
            chosen.append(biased_pop(unused))
        pool = [net for net in produced if net not in banned and net not in chosen]
        while len(chosen) < count and pool:
            chosen.append(biased_pop(pool))
        return chosen

    d_nets = dangling_first(spec.num_flip_flops, depth_bias=spec.ff_depth_bias)
    for i, d_net in enumerate(d_nets):
        name = f"ff{i}"
        circuit.release_driver(ff_outputs[i])  # release the reserved claim
        circuit.add_gate(name, "DFF_X1", {"D": d_net, "CLK": "clock"}, ff_outputs[i])
        fanout_count[d_net] = fanout_count.get(d_net, 0) + 1

    po_nets = dangling_first(spec.num_outputs, exclude=d_nets)
    for net in po_nets:
        circuit.add_output(net)
        fanout_count[net] = fanout_count.get(net, 0) + 1
    # Any still-dangling nets become extra POs so the netlist carries no
    # dead logic (a synthesized design would have swept it).  With
    # ``reduce_dangling`` they are XOR-folded down to one extra PO
    # instead; the tree gates sit outside the seeded draw sequence, so
    # the flag cannot perturb existing seeded netlists.
    dangling = [
        net for net in produced
        if fanout_count.get(net, 0) == 0 and not net.startswith(("pi", "ffq"))
    ]
    if spec.reduce_dangling and len(dangling) > 1:
        xor_cell = library.cheapest("XOR2")
        frontier = dangling
        index = 0
        while len(frontier) > 1:
            folded: List[str] = []
            for j in range(0, len(frontier) - 1, 2):
                out = f"red{index}"
                circuit.add_gate(
                    f"rg{index}", xor_cell.name,
                    {"A": frontier[j], "B": frontier[j + 1]}, out,
                )
                index += 1
                folded.append(out)
            if len(frontier) % 2:
                folded.append(frontier[-1])
            frontier = folded
        circuit.add_output(frontier[0])
    else:
        for net in dangling:
            circuit.add_output(net)

    circuit.validate()
    return circuit
