"""IWLS2005 benchmark stand-ins, calibrated to the paper's Table I.

The paper reports, per benchmark, the *post-synthesis* cell and
flip-flop counts under its TSMC 0.13um library (Table I, columns 2-3).
Each profile below reproduces those counts exactly; PI/PO counts follow
the published ISCAS'89 interfaces.  (Table I's row label "s9324" is a
typo for s9234 — Table II uses s9234.)

Every benchmark also gets a clock period the way synthesis would choose
one: a fixed relative margin over the critical path of the generated
netlist, so that slack distributions — which drive the Table I
"available FF" analysis — are meaningful and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.cells import CellLibrary
from ..netlist.circuit import Circuit
from ..sta.clock import ClockSpec
from ..sta.timing import analyze
from .generator import GeneratorSpec, random_sequential_circuit

__all__ = ["BENCHMARKS", "iwls_benchmark", "benchmark_names", "BenchmarkInstance"]

#: name -> (PIs, POs, FFs, total cells) from Table I + ISCAS'89 interfaces.
_PROFILES: Dict[str, Tuple[int, int, int, int]] = {
    "s1238": (14, 14, 18, 341),
    "s5378": (35, 49, 163, 775),
    "s9234": (36, 39, 145, 613),
    "s13207": (62, 152, 330, 901),
    "s15850": (77, 150, 134, 447),
    "s38417": (28, 106, 1564, 5397),
    "s38584": (38, 304, 1168, 5304),
}

BENCHMARKS: Tuple[str, ...] = tuple(_PROFILES)

#: Margin of the chosen clock period over the critical path delay, as a
#: synthesis flow would target (a realistic ~8% guard band).  The paper
#: inserts 1ns glitches without touching the clock; whether a given FF
#: has room for that depends on its endpoint slack under this period,
#: which is exactly what Table I's availability analysis measures.
_CLOCK_MARGIN = 1.08

#: Operand-locality probability.  The recency *window* scales with the
#: netlist size (see :func:`iwls_benchmark`) so logic depth — and hence
#: the slack distribution — is comparable across benchmark sizes, as it
#: is for the real designs.
_LOCALITY_P = 0.50


@dataclass(frozen=True)
class BenchmarkInstance:
    """A generated benchmark plus its synthesis-chosen clock."""

    circuit: Circuit
    clock: ClockSpec
    critical_delay: float


def benchmark_names() -> List[str]:
    return list(BENCHMARKS)


def iwls_benchmark(
    name: str,
    library: Optional[CellLibrary] = None,
    seed: int = 2019,
) -> BenchmarkInstance:
    """Generate the stand-in for IWLS2005 benchmark *name*.

    Deterministic per (name, seed).  The returned clock period is the
    critical-path delay of the generated netlist times the synthesis
    margin, rounded up to 10ps.
    """
    try:
        num_inputs, num_outputs, num_ffs, num_cells = _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARKS)}"
        ) from None
    stable = sum(ord(ch) * (i + 1) for i, ch in enumerate(name))
    num_comb = num_cells - num_ffs
    spec = GeneratorSpec(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_flip_flops=num_ffs,
        num_combinational=num_comb,
        seed=seed + stable % 1000,
        locality=_LOCALITY_P,
        window=max(12, num_comb // 15),
        ff_depth_bias=3.0,
    )
    circuit = random_sequential_circuit(spec, library)
    probe = analyze(circuit, ClockSpec(period=1000.0))
    critical = max(
        (e.arrival_max + circuit.gates[e.ff].cell.setup
         for e in probe.endpoints.values()),
        default=1.0,
    )
    period = round(critical * _CLOCK_MARGIN + 0.005, 2)
    return BenchmarkInstance(
        circuit=circuit,
        clock=ClockSpec(period=period),
        critical_delay=critical,
    )
