"""Path-level queries on a timing analysis.

The design flow needs two of these: identifying flip-flops on (or near)
the critical path so GK insertion avoids them (Sec. IV-B: "we can
actively avoid choosing FFs on the critical paths"), and tracing a
violated endpoint's worst path pin-by-pin for the true/false violation
triage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from .timing import TimingAnalysis

__all__ = ["PathPoint", "worst_endpoints", "critical_ffs", "trace_path"]


@dataclass(frozen=True)
class PathPoint:
    """One pin along a timing path."""

    net: str
    arrival: float
    through: str  # driving gate name, or "" for a source


def worst_endpoints(analysis: TimingAnalysis, count: int) -> List[str]:
    """The *count* capturing FFs with the smallest setup slack."""
    ranked = sorted(
        analysis.endpoints.values(), key=lambda e: (e.setup_slack, e.ff)
    )
    return [e.ff for e in ranked[:count]]


def critical_ffs(analysis: TimingAnalysis, margin: float) -> Set[str]:
    """FFs whose capture *or* launch touches a near-critical path.

    An FF is critical if its endpoint setup slack is below *margin*, or
    if it launches the worst path of such an endpoint.  These are the
    FFs the GK insertion flow skips.
    """
    critical: Set[str] = set()
    by_output = {
        ff.output: ff.name for ff in analysis.circuit.flip_flops()
    }
    for endpoint in analysis.endpoints.values():
        if endpoint.setup_slack >= margin:
            continue
        critical.add(endpoint.ff)
        path = analysis.critical_path_to(endpoint.data_net)
        if path:
            source = path[0]
            launcher = by_output.get(source)
            if launcher is not None:
                critical.add(launcher)
    return critical


def trace_path(analysis: TimingAnalysis, endpoint_ff: str) -> List[PathPoint]:
    """The worst (max-arrival) path into *endpoint_ff*, source first.

    This is the pin-by-pin arrival listing the paper's flow inspects to
    distinguish a true timing violation from the deliberate delay of a
    glitch generator.
    """
    endpoint = analysis.endpoints[endpoint_ff]
    nets = analysis.critical_path_to(endpoint.data_net)
    points: List[PathPoint] = []
    for net in nets:
        driver = analysis.circuit.driver_of(net)
        points.append(
            PathPoint(
                net=net,
                arrival=analysis.arrival_max[net],
                through=driver.name if driver is not None else "",
            )
        )
    return points
