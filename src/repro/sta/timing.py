"""Static timing analysis (the PrimeTime stand-in).

Single-pass block-based STA over the combinational network:

* **max arrival** per net (late mode) -> setup slack per flip-flop,
* **min arrival** per net (early mode) -> hold slack per flip-flop,
* per-endpoint path-delay bounds ``LB_ij`` / ``UB_ij`` of the paper's
  Eq. (1), used by the GK insertion rules (Eqs. (3)-(6)).

Arrival times are measured from the launching clock edge at t = 0: a
flip-flop *i* launches its Q at ``T_i + clk->q``; a primary input is
assumed valid at ``input_arrival``.  Wire delays (annotated by the P&R
substrate) are added at each driving pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..netlist.circuit import Circuit, Gate, NetlistError
from ..netlist.compiled import compile_circuit
from ..obs.spans import trace_span
from .clock import ClockSpec

__all__ = ["EndpointTiming", "TimingAnalysis", "analyze"]


@dataclass(frozen=True)
class EndpointTiming:
    """Setup/hold view of one capturing flip-flop."""

    ff: str
    data_net: str
    arrival_max: float
    arrival_min: float
    required_setup: float  # latest allowed arrival (UB side)
    required_hold: float  # earliest allowed arrival (LB side)

    @property
    def setup_slack(self) -> float:
        return self.required_setup - self.arrival_max

    @property
    def hold_slack(self) -> float:
        return self.arrival_min - self.required_hold

    @property
    def violated(self) -> bool:
        return self.setup_slack < 0 or self.hold_slack < 0


@dataclass
class TimingAnalysis:
    """Complete result of one :func:`analyze` run."""

    circuit: Circuit
    clock: ClockSpec
    arrival_max: Dict[str, float]
    arrival_min: Dict[str, float]
    endpoints: Dict[str, EndpointTiming]
    #: net -> input net that set its max arrival (for path tracing)
    critical_pred: Dict[str, Optional[str]]

    def setup_violations(self) -> List[EndpointTiming]:
        return [e for e in self.endpoints.values() if e.setup_slack < 0]

    def hold_violations(self) -> List[EndpointTiming]:
        return [e for e in self.endpoints.values() if e.hold_slack < 0]

    def worst_setup_slack(self) -> float:
        if not self.endpoints:
            return float("inf")
        return min(e.setup_slack for e in self.endpoints.values())

    def endpoint_bounds(self, ff_name: str) -> Tuple[float, float]:
        """(LB_ij, UB_ij) of Eq. (1) for capturing FF *j*.

        With per-FF skews the launching FF's ``T_i`` is not unique, so
        the bounds are conservative: the largest launcher skew tightens
        UB, the smallest tightens LB.  With zero skew (the default
        everywhere in the paper's experiments) this is exact:
        ``LB = T_hold`` and ``UB = T_clk - T_set``.
        """
        endpoint = self.endpoints.get(ff_name)
        if endpoint is None:
            raise NetlistError(f"{ff_name!r} is not a capturing flip-flop")
        ff = self.circuit.gates[ff_name]
        t_j = self.clock.arrival(ff_name)
        min_skew, max_skew = self.clock.skew_bounds()
        lb = ff.cell.hold + t_j - min_skew
        ub = (
            self.clock.period
            + t_j
            - max_skew
            - ff.cell.setup
            - self.clock.uncertainty
        )
        return lb, ub

    def critical_path_to(self, net: str) -> List[str]:
        """Nets along the max-arrival path ending at *net* (source first)."""
        path = [net]
        while True:
            pred = self.critical_pred.get(path[-1])
            if pred is None:
                break
            path.append(pred)
        path.reverse()
        return path


def analyze(
    circuit: Circuit,
    clock: ClockSpec,
    wire_delay: Optional[Mapping[str, float]] = None,
    input_arrival: float = 0.0,
) -> TimingAnalysis:
    """Run late/early STA on *circuit* under *clock*.

    *wire_delay* maps a net to the interconnect delay of its driving
    pin (from :mod:`repro.pnr`); unannotated nets have zero wire delay.
    """
    with trace_span("sta.analyze", design=circuit.name,
                    cells=len(circuit.gates)) as span:
        analysis = _analyze(circuit, clock, wire_delay, input_arrival)
        span.annotate(endpoints=len(analysis.endpoints))
    return analysis


def _analyze(
    circuit: Circuit,
    clock: ClockSpec,
    wire_delay: Optional[Mapping[str, float]],
    input_arrival: float,
) -> TimingAnalysis:
    wires = wire_delay or {}
    arrival_max: Dict[str, float] = {}
    arrival_min: Dict[str, float] = {}
    critical_pred: Dict[str, Optional[str]] = {}

    for net in circuit.inputs + circuit.key_inputs:
        arrival_max[net] = arrival_min[net] = input_arrival + wires.get(net, 0.0)
        critical_pred[net] = None
    if circuit.clock is not None:
        arrival_max[circuit.clock] = arrival_min[circuit.clock] = 0.0
        critical_pred[circuit.clock] = None
    for ff in circuit.flip_flops():
        launch = clock.arrival(ff.name) + ff.cell.delay + wires.get(ff.output, 0.0)
        arrival_max[ff.output] = arrival_min[ff.output] = launch
        critical_pred[ff.output] = None

    # The compiled schedule is exactly topological_order(), with pin
    # order preserved per gate, so the first-max tie-break (and thus
    # critical_pred) is unchanged.
    compiled = compile_circuit(circuit)
    clock_net = circuit.clock
    for i in range(compiled.num_gates):
        out = compiled.out_names[i]
        stage = compiled.delays[i] + wires.get(out, 0.0)
        operands = compiled.fanin_name_tuples[i]
        if operands:
            data = [n for n in operands if n != clock_net]
            worst = max(data, key=lambda n: arrival_max[n])
            arrival_max[out] = arrival_max[worst] + stage
            arrival_min[out] = min(arrival_min[n] for n in data) + stage
            critical_pred[out] = worst
        else:  # tie cells
            arrival_max[out] = arrival_min[out] = stage
            critical_pred[out] = None

    endpoints: Dict[str, EndpointTiming] = {}
    for ff in circuit.flip_flops():
        data_net = ff.pins["D"]
        t_j = clock.arrival(ff.name)
        endpoints[ff.name] = EndpointTiming(
            ff=ff.name,
            data_net=data_net,
            arrival_max=arrival_max[data_net],
            arrival_min=arrival_min[data_net],
            required_setup=clock.period
            + t_j
            - ff.cell.setup
            - clock.uncertainty,
            required_hold=t_j + ff.cell.hold,
        )
    return TimingAnalysis(
        circuit=circuit,
        clock=clock,
        arrival_max=arrival_max,
        arrival_min=arrival_min,
        endpoints=endpoints,
        critical_pred=critical_pred,
    )
