"""Clock specification for static timing analysis.

Eq. (1) of the paper allows distinct clock arrival times ``T_i`` and
``T_j`` at the launching and capturing flip-flops (clock skew).  A
:class:`ClockSpec` carries the clock period plus an optional per-FF skew
map; the design flows keep "the same clock period for the synthesis and
P&R of encrypted circuits" (Sec. IV-B), which is why every experiment
reuses the original circuit's spec unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

__all__ = ["ClockSpec", "synthetic_clock_tree_skew"]


@dataclass(frozen=True)
class ClockSpec:
    """A single clock domain.

    Attributes:
        period: Clock period T_clk in ns.
        skew: FF gate name -> clock arrival offset T_i in ns (absent
            FFs have zero skew).
        uncertainty: Extra margin subtracted from every setup window
            (models jitter; 0 by default).
    """

    period: float
    skew: Mapping[str, float] = field(default_factory=dict)
    uncertainty: float = 0.0

    def arrival(self, ff_name: str) -> float:
        return self.skew.get(ff_name, 0.0)

    def skew_bounds(self) -> "tuple[float, float]":
        """(min, max) clock arrival offset across all FFs."""
        if not self.skew:
            return (0.0, 0.0)
        values = list(self.skew.values())
        return (min(min(values), 0.0), max(max(values), 0.0))

    def with_period(self, period: float) -> "ClockSpec":
        return ClockSpec(period=period, skew=dict(self.skew), uncertainty=self.uncertainty)


def synthetic_clock_tree_skew(
    ff_names: Iterable[str], max_skew: float, seed: str = ""
) -> Dict[str, float]:
    """Deterministic pseudo-random skews in [0, max_skew] per FF.

    Models the residual insertion-delay differences of a balanced clock
    tree after CTS.  Hash-based so results are stable across runs and
    independent of iteration order.
    """
    skews: Dict[str, float] = {}
    for name in ff_names:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        skews[name] = round(fraction * max_skew, 4)
    return skews
