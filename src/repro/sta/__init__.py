"""Static timing analysis (the PrimeTime stand-in)."""

from .clock import ClockSpec, synthetic_clock_tree_skew
from .timing import EndpointTiming, TimingAnalysis, analyze
from .paths import PathPoint, critical_ffs, trace_path, worst_endpoints
from .report import path_report, slack_report, summary_line

__all__ = [
    "ClockSpec",
    "synthetic_clock_tree_skew",
    "EndpointTiming",
    "TimingAnalysis",
    "analyze",
    "PathPoint",
    "critical_ffs",
    "trace_path",
    "worst_endpoints",
    "path_report",
    "slack_report",
    "summary_line",
]
