"""PrimeTime-style text reports.

Human-readable renderings of a :class:`~repro.sta.timing.TimingAnalysis`
used by the examples and bench output: an endpoint slack summary and a
per-pin path report (the artifact the paper's flow reads when triaging
"true" vs. "false" violations after GK insertion).
"""

from __future__ import annotations

from typing import List, Optional

from .paths import trace_path
from .timing import TimingAnalysis

__all__ = ["slack_report", "path_report", "summary_line"]


def summary_line(analysis: TimingAnalysis) -> str:
    setup = analysis.setup_violations()
    hold = analysis.hold_violations()
    return (
        f"clock {analysis.clock.period:.3f}ns | "
        f"{len(analysis.endpoints)} endpoints | "
        f"WNS {analysis.worst_setup_slack():+.3f}ns | "
        f"{len(setup)} setup / {len(hold)} hold violations"
    )


def slack_report(analysis: TimingAnalysis, limit: Optional[int] = 20) -> str:
    """Endpoint table sorted by setup slack (worst first)."""
    rows: List[str] = [
        summary_line(analysis),
        f"{'endpoint':<24}{'arrival':>10}{'required':>10}{'setup':>9}{'hold':>9}",
    ]
    ranked = sorted(
        analysis.endpoints.values(), key=lambda e: (e.setup_slack, e.ff)
    )
    if limit is not None:
        ranked = ranked[:limit]
    for e in ranked:
        flag = " VIOLATED" if e.violated else ""
        rows.append(
            f"{e.ff:<24}{e.arrival_max:>10.3f}{e.required_setup:>10.3f}"
            f"{e.setup_slack:>+9.3f}{e.hold_slack:>+9.3f}{flag}"
        )
    return "\n".join(rows)


def path_report(analysis: TimingAnalysis, endpoint_ff: str) -> str:
    """Pin-by-pin arrival listing of the worst path into *endpoint_ff*."""
    endpoint = analysis.endpoints[endpoint_ff]
    rows = [
        f"path to {endpoint_ff} (D = {endpoint.data_net})",
        f"{'point':<32}{'through':<20}{'arrival':>10}",
    ]
    for point in trace_path(analysis, endpoint_ff):
        rows.append(f"{point.net:<32}{point.through:<20}{point.arrival:>10.3f}")
    rows.append(
        f"{'required (setup)':<52}{endpoint.required_setup:>10.3f}"
    )
    rows.append(f"{'slack':<52}{endpoint.setup_slack:>+10.3f}")
    return "\n".join(rows)
