"""Resumable JSONL result store.

One JSON object per line, appended as jobs finish, flushed per record —
so a killed campaign leaves a valid prefix plus at most one torn line,
which :meth:`ResultStore.load` tolerates.  Records carry their job id;
on resume the runner skips every job whose latest record is ``ok`` and
replays its stored payload into the aggregate, so a rerun completes
only the missing/failed cells.  The latest record per job id wins,
which also makes the store an audit log: every attempt outcome
(``timeout``, ``crashed``, ``error``) of every cell stays visible.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSONL store for campaign job records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._stream = None

    # ------------------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def truncate(self) -> None:
        """Start a fresh campaign file (non-resume runs)."""
        self.close()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "w"):
            pass

    def append(self, record: Mapping[str, Any]) -> None:
        if self._stream is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            # A killed campaign can leave a torn final line with no
            # newline; appending straight after it would corrupt the
            # first new record too.  Heal the line boundary first.
            needs_newline = False
            try:
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    needs_newline = probe.read(1) != b"\n"
            except OSError:
                pass  # missing or empty file: nothing to heal
            self._stream = open(self.path, "a")
            if needs_newline:
                self._stream.write("\n")
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Every well-formed record, in file order.

        A torn final line (killed campaign) or stray garbage is skipped
        rather than fatal: the store must stay loadable after any crash.
        """
        if not self.exists():
            return
        with open(self.path) as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Latest record per job id (later lines supersede earlier)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.iter_records():
            job_id = record.get("job_id")
            if job_id:
                latest[job_id] = record
        return latest

    def completed_ids(self) -> List[str]:
        """Job ids whose latest record completed successfully."""
        return sorted(
            job_id
            for job_id, record in self.load().items()
            if record.get("status") == "ok"
        )
