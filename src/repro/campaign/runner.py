"""The campaign scheduler.

Fans a job list out over a ``ProcessPoolExecutor`` (at most one
in-flight job per worker, so the blast radius of a dying worker is
bounded and known), enforces retry policy, and streams every outcome
into the JSONL result store as it lands.

Failure taxonomy:

* ``error`` + ``transient`` — the handler raised
  :class:`~repro.campaign.worker.TransientJobError`; retried with
  exponential backoff up to ``retries`` extra attempts.
* ``error`` (deterministic) — recorded once, never retried: rerunning
  a pure function on the same inputs cannot change the answer.
* ``timeout`` — the worker's SIGALRM deadline fired; recorded, not
  retried (a deterministic job that timed out once will time out
  again).  Only that matrix cell fails.
* ``crashed`` — the worker process died (segfault, OOM-kill,
  ``os._exit``).  ``ProcessPoolExecutor`` breaks the whole pool, so the
  runner rebuilds it and quarantines every job that was in flight:
  suspects rerun one at a time (uncharged), so the next pool break
  names its culprit with certainty — only the true crasher is charged
  attempts, and innocent bystanders always complete unharmed.
* a *hung* worker (deadline unenforceable or blocked in C code) is
  detected by the parent after ``timeout + hang_grace`` seconds; the
  pool is torn down, the overdue job is charged a timeout, and the
  rest are resubmitted without penalty.

With ``resume=True`` every job whose latest stored record is ``ok`` is
skipped and its payload replayed from the store, so a rerun only
computes missing or failed cells.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .cache import NetlistCache
from .matrix import CampaignMatrix, JobSpec
from .store import ResultStore
from .worker import execute_job, init_worker, load_worker_modules, pool_execute

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]

Progress = Callable[[Dict[str, Any]], None]


@dataclass
class CampaignConfig:
    """Knobs of one campaign run."""

    jobs: int = 0                      #: worker count; 0 = auto
    timeout: Optional[float] = None    #: per-job wall-clock seconds
    retries: int = 2                   #: extra attempts for transient failures
    backoff: float = 0.25              #: base backoff seconds (doubles per attempt)
    cache_dir: Optional[str] = None    #: netlist cache root; None disables
    store_path: Optional[str] = None   #: JSONL result store; None disables
    resume: bool = False               #: skip jobs already ok in the store
    worker_modules: Tuple[str, ...] = ()  #: extra kind-registration modules
    hang_grace: float = 5.0            #: parent-side slack past `timeout`
    mp_start_method: Optional[str] = None

    def resolve_jobs(self, num_jobs: int) -> int:
        if self.jobs > 0:
            return max(1, min(self.jobs, max(1, num_jobs)))
        return max(1, min(os.cpu_count() or 1, max(1, num_jobs)))


@dataclass
class CampaignResult:
    """Everything a finished campaign knows, in matrix order."""

    jobs: List[JobSpec]
    records: Dict[str, Dict[str, Any]]
    wall_seconds: float = 0.0
    workers: int = 1
    resumed: int = 0

    def ordered(self) -> List[Dict[str, Any]]:
        return [self.records[spec.job_id] for spec in self.jobs]

    def payloads(self) -> List[Optional[Dict[str, Any]]]:
        return [record.get("payload") for record in self.ordered()]

    @property
    def status_counts(self) -> Dict[str, int]:
        return dict(Counter(r["status"] for r in self.ordered()))

    @property
    def ok(self) -> bool:
        return all(r["status"] == "ok" for r in self.ordered())

    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.ordered() if r["status"] != "ok"]

    def cache_stats(self) -> Dict[str, int]:
        hits = sum(r.get("cache", {}).get("hits", 0) for r in self.ordered())
        misses = sum(r.get("cache", {}).get("misses", 0) for r in self.ordered())
        return {"hits": hits, "misses": misses}


# ----------------------------------------------------------------------

@dataclass
class _Attempt:
    spec: JobSpec
    attempt: int = 1
    ready_at: float = 0.0


def run_campaign(
    matrix: Union[CampaignMatrix, Sequence[JobSpec]],
    config: Optional[CampaignConfig] = None,
    progress: Optional[Progress] = None,
) -> CampaignResult:
    """Run every cell of *matrix*; returns records in matrix order.

    *progress*, when given, is called with each finalized record as it
    lands (completion order, not matrix order).
    """
    config = config or CampaignConfig()
    jobs = list(matrix.expand() if isinstance(matrix, CampaignMatrix) else matrix)
    workers = config.resolve_jobs(len(jobs))

    store = ResultStore(config.store_path) if config.store_path else None
    resumed_records: Dict[str, Dict[str, Any]] = {}
    if store is not None:
        if config.resume:
            resumed_records = {
                job_id: record
                for job_id, record in store.load().items()
                if record.get("status") == "ok"
            }
        else:
            store.truncate()

    result = CampaignResult(jobs=jobs, records={}, workers=workers)
    todo: List[JobSpec] = []
    seen: set = set()
    for spec in jobs:
        if spec.job_id in seen:
            continue
        seen.add(spec.job_id)
        if spec.job_id in resumed_records:
            record = dict(resumed_records[spec.job_id])
            record["resumed"] = True
            result.records[spec.job_id] = record
            result.resumed += 1
        else:
            todo.append(spec)

    def finalize(record: Dict[str, Any], attempt: int) -> None:
        record["attempts"] = attempt
        record["workers"] = workers
        result.records[record["job_id"]] = record
        if store is not None:
            store.append(record)
        _adopt_obs(record)
        if progress is not None:
            progress(record)

    start = time.perf_counter()
    try:
        if todo:
            # One span for the whole run; its exported context travels
            # to every job (as a separate argument — never inside the
            # spec, which would perturb job IDs), so adopted job trees
            # stitch under it: one campaign, one span tree.
            from ..obs.propagate import current_context
            from ..obs.spans import trace_span

            with trace_span("campaign.run", jobs=len(todo),
                            workers=workers):
                ctx = current_context()
                trace_ctx = None if ctx is None else ctx.to_wire()
                if workers == 1:
                    _run_serial(todo, config, finalize, trace_ctx)
                else:
                    _run_pool(todo, config, workers, finalize, trace_ctx)
    finally:
        if store is not None:
            store.close()
    result.wall_seconds = time.perf_counter() - start
    return result


def _adopt_obs(record: Dict[str, Any]) -> None:
    """Merge a job's span/metric snapshot into the parent's session (if
    observability is enabled), so ``--profile`` sees across the pool."""
    from ..obs import context as _obs
    from ..obs.snapshots import adopt_payload

    session = _obs.ACTIVE
    payload = record.get("obs")
    if session is not None and payload:
        adopt_payload(session, payload)


def _retryable(record: Dict[str, Any]) -> bool:
    return record["status"] == "error" and bool(record.get("transient"))


def _backoff_seconds(config: CampaignConfig, attempt: int) -> float:
    return config.backoff * (2.0 ** (attempt - 1))


# ----------------------------------------------------------------------
# Serial path (jobs=1): same worker code, no pool.
# ----------------------------------------------------------------------

def _run_serial(
    todo: Sequence[JobSpec],
    config: CampaignConfig,
    finalize: Callable[[Dict[str, Any], int], None],
    trace_ctx: Optional[Dict[str, Any]] = None,
) -> None:
    load_worker_modules(config.worker_modules)
    cache = NetlistCache(config.cache_dir)
    for spec in todo:
        attempt = 1
        while True:
            record = execute_job(spec, cache=cache, timeout=config.timeout,
                                 trace_ctx=trace_ctx)
            if _retryable(record) and attempt <= config.retries:
                time.sleep(_backoff_seconds(config, attempt))
                attempt += 1
                continue
            finalize(record, attempt)
            break


# ----------------------------------------------------------------------
# Pool path
# ----------------------------------------------------------------------

def _teardown(executor: ProcessPoolExecutor, kill: bool) -> None:
    """Shut an executor down for good, joining its management thread.

    With *kill*, worker processes are terminated first so the join can
    never block on a hung job; idle workers just exit early.  Joining
    (``wait=True``) matters: a fire-and-forget shutdown leaves the
    management thread racing the interpreter's atexit hooks, which
    surfaces as an ignored ``OSError`` traceback at exit.
    """
    if kill:
        for process in list((getattr(executor, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
    try:
        executor.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass


def _run_pool(
    todo: Sequence[JobSpec],
    config: CampaignConfig,
    workers: int,
    finalize: Callable[[Dict[str, Any], int], None],
    trace_ctx: Optional[Dict[str, Any]] = None,
) -> None:
    import multiprocessing

    mp_context = (
        multiprocessing.get_context(config.mp_start_method)
        if config.mp_start_method
        else None
    )

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=init_worker,
            initargs=(config.cache_dir, tuple(config.worker_modules)),
        )

    executor = make_executor()
    pending: List[_Attempt] = [_Attempt(spec) for spec in todo]
    inflight: Dict[Any, Tuple[_Attempt, float]] = {}
    #: job ids suspected of killing a worker.  Suspects run one at a
    #: time: a pool that breaks with exactly one job in flight names
    #: its culprit with certainty, so innocent bystanders of a group
    #: crash are never charged an attempt.
    quarantine: set = set()

    def crash_record(attempt: _Attempt, message: str) -> Dict[str, Any]:
        return {
            "type": "result",
            "job_id": attempt.spec.job_id,
            "kind": attempt.spec.kind,
            "params": attempt.spec.param_dict,
            "status": "crashed",
            "payload": None,
            "error": message,
            "transient": True,
            "duration": None,
            "obs": None,
            "cache": {"hits": 0, "misses": 0},
        }

    def charge_and_requeue(attempt: _Attempt, record: Dict[str, Any]) -> None:
        """Count one failed attempt; requeue with backoff or finalize."""
        if attempt.attempt <= config.retries:
            pending.append(
                _Attempt(
                    attempt.spec,
                    attempt.attempt + 1,
                    time.monotonic()
                    + _backoff_seconds(config, attempt.attempt),
                )
            )
        else:
            finalize(record, attempt.attempt)

    def rebuild_pool(kill: bool) -> None:
        nonlocal executor
        _teardown(executor, kill=kill)
        executor = make_executor()

    def handle_pool_break(broken: List[_Attempt]) -> None:
        """A worker died.  If the culprit is unambiguous (one job in
        flight), charge it; otherwise quarantine every suspect and
        requeue them free of charge — they rerun one at a time, so the
        next crash is attributable."""
        broken = broken + [attempt for attempt, _started in inflight.values()]
        inflight.clear()
        rebuild_pool(kill=False)
        if len(broken) == 1:
            attempt = broken[0]
            quarantine.add(attempt.spec.job_id)
            charge_and_requeue(
                attempt, crash_record(attempt, "worker process died")
            )
        else:
            for attempt in broken:
                quarantine.add(attempt.spec.job_id)
                pending.append(_Attempt(attempt.spec, attempt.attempt))

    try:
        while pending or inflight:
            now = time.monotonic()

            # Submit: at most one in-flight job per worker, so every
            # submitted future is actually running (hang detection and
            # crash attribution both rely on that).  While any crash
            # suspect is pending, suspects run strictly alone — nothing
            # else is submitted until they are resolved.
            def submit(attempt: _Attempt) -> None:
                future = executor.submit(
                    pool_execute, attempt.spec.to_dict(), config.timeout,
                    trace_ctx,
                )
                inflight[future] = (attempt, time.monotonic())

            suspects_pending = any(
                a.spec.job_id in quarantine for a in pending
            )
            if suspects_pending:
                if not inflight:
                    ready = next(
                        (i for i, a in enumerate(pending)
                         if a.spec.job_id in quarantine
                         and a.ready_at <= now),
                        None,
                    )
                    if ready is not None:
                        submit(pending.pop(ready))
            else:
                ready_index = next(
                    (i for i, a in enumerate(pending) if a.ready_at <= now),
                    None,
                )
                while len(inflight) < workers and ready_index is not None:
                    submit(pending.pop(ready_index))
                    now = time.monotonic()
                    ready_index = next(
                        (i for i, a in enumerate(pending)
                         if a.ready_at <= now),
                        None,
                    )

            if not inflight:
                # Everything is backing off (or gated behind a crash
                # suspect): sleep until the first eligible job is due.
                gate = [
                    a for a in pending if a.spec.job_id in quarantine
                ] or pending
                due = min(a.ready_at for a in gate)
                time.sleep(max(0.0, min(due - time.monotonic(), 0.5)))
                continue

            done, _ = wait(
                set(inflight), timeout=0.1, return_when=FIRST_COMPLETED
            )

            broken_attempts: List[_Attempt] = []
            for future in done:
                attempt, _started = inflight.pop(future)
                error = future.exception()
                if error is None:
                    # The job ran to completion without killing its
                    # worker, whatever the record says: not a crasher.
                    quarantine.discard(attempt.spec.job_id)
                    record = future.result()
                    if _retryable(record) and attempt.attempt <= config.retries:
                        pending.append(
                            _Attempt(
                                attempt.spec,
                                attempt.attempt + 1,
                                time.monotonic()
                                + _backoff_seconds(config, attempt.attempt),
                            )
                        )
                    else:
                        finalize(record, attempt.attempt)
                elif isinstance(error, BrokenProcessPool):
                    broken_attempts.append(attempt)
                else:
                    charge_and_requeue(
                        attempt,
                        crash_record(
                            attempt,
                            f"{type(error).__name__}: {error}",
                        ),
                    )
            if broken_attempts:
                handle_pool_break(broken_attempts)
                continue

            # Hang backstop: a worker past deadline + grace is presumed
            # stuck in uninterruptible code; kill the pool, charge the
            # overdue job(s) a timeout, resubmit the rest free of charge.
            if config.timeout is not None and inflight:
                now = time.monotonic()
                limit = config.timeout + config.hang_grace
                overdue = [
                    future
                    for future, (_a, started) in inflight.items()
                    if now - started > limit
                ]
                if overdue:
                    survivors = [
                        attempt
                        for future, (attempt, _s) in inflight.items()
                        if future not in overdue
                    ]
                    hung = [inflight[future][0] for future in overdue]
                    inflight.clear()
                    rebuild_pool(kill=True)
                    for attempt in hung:
                        record = crash_record(
                            attempt,
                            f"worker hung past {limit:.1f}s; killed",
                        )
                        record["status"] = "timeout"
                        record["transient"] = False
                        finalize(record, attempt.attempt)
                    pending.extend(
                        _Attempt(a.spec, a.attempt) for a in survivors
                    )
    finally:
        # Kill-then-join: an exception may have escaped with a worker
        # still running (or hung), and a non-blocking shutdown leaves
        # the executor's management thread racing the interpreter's
        # atexit hooks.
        _teardown(executor, kill=True)
