"""Content-addressed on-disk cache of synthesized / locked netlists.

Generating a benchmark stand-in ("synthesis") and locking it dominate
the cost of every sweep cell, and both are pure functions of their
parameters.  The cache keys each artifact by a SHA-256 of its canonical
parameter JSON (salted with :data:`CACHE_VERSION` so flow changes
invalidate old entries) and stores one JSON payload per entry —
typically the locked netlist text, the correct key, and the measured
overhead numbers.

Writes are atomic (``os.replace`` of a unique temp file), so concurrent
workers racing on the same key are safe: last writer wins and both
wrote identical bytes anyway, because entries are content-addressed
functions of their inputs.  Hit/miss counts are kept per instance and
reported home in each job result.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from .matrix import canonical_json

__all__ = ["CACHE_VERSION", "NetlistCache", "content_key"]

#: Bump to invalidate every cached artifact (e.g. when the generator,
#: a locking flow, or the delay model changes shape).
CACHE_VERSION = 2


def content_key(**fields: Any) -> str:
    """SHA-256 content hash of canonical parameter JSON.

    The one hashing function behind every content-addressed artifact in
    the repo: campaign cache entries *and* the serving layer's circuit
    registry (:mod:`repro.serve.registry`) key with it, so a circuit
    registered on a server and a netlist cached by a campaign derive
    their identities the same way (including :data:`CACHE_VERSION`
    salting — a flow change invalidates both).
    """
    payload = dict(fields)
    payload["__cache_version__"] = CACHE_VERSION
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class NetlistCache:
    """Filesystem cache; ``root=None`` disables it (every get misses).

    >>> cache = NetlistCache("/tmp/repro-cache")
    >>> key = cache.key(kind="lock", benchmark="s1238", seed=2019)
    >>> cache.get(key) is None   # first run
    True
    """

    def __init__(self, root: Optional[str]) -> None:
        self.root = Path(root) if root else None
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    # ------------------------------------------------------------------

    @staticmethod
    def key(**fields: Any) -> str:
        return content_key(**fields)

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if self.root is None:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path) as stream:
                entry = json.load(stream)
        except (OSError, json.JSONDecodeError):
            # Missing, or a torn write from a killed worker: treat as a
            # miss and let the recompute overwrite it atomically.
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Mapping[str, Any]) -> Optional[Path]:
        if self.root is None:
            return None
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "version": CACHE_VERSION, "payload": payload}
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as stream:
                json.dump(entry, stream, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Binary artifacts (pickled circuits): lets pool workers share one
    # benchmark generation instead of each regenerating it.  Pickle
    # round-trips preserve gate insertion order and names exactly, so a
    # loaded instance locks bit-identically to a freshly generated one.
    # ------------------------------------------------------------------

    def get_object(self, key: str) -> Optional[Any]:
        if self.root is None:
            self.misses += 1
            return None
        path = self._path(key).with_suffix(".pkl")
        try:
            with open(path, "rb") as stream:
                value = pickle.load(stream)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put_object(self, key: str, value: Any) -> Optional[Path]:
        if self.root is None:
            return None
        path = self._path(key).with_suffix(".pkl")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                pickle.dump(value, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def get_or_compute(
        self, key: str, compute
    ) -> Dict[str, Any]:
        """Return the cached payload for *key*, computing and storing
        it on a miss.  *compute* must be a pure function of the inputs
        hashed into *key* — that is the content-addressing contract."""
        payload = self.get(key)
        if payload is None:
            payload = compute()
            self.put(key, payload)
        return payload

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root else "disabled"
        return f"NetlistCache({where}, hits={self.hits}, misses={self.misses})"
