"""Child-process job execution.

:func:`execute_job` is the one entry point: it looks the job kind up in
a registry, runs the handler under a wall-clock deadline and an
observability capture, and returns a plain-dict record — never raising
— so the parent can treat every outcome uniformly.  The same function
runs in-process for serial campaigns (``--jobs 1``) and inside pool
workers for parallel ones, which is what makes serial and parallel
aggregates byte-identical: there is exactly one code path that computes
a cell.

Deadlines use ``SIGALRM`` (``signal.setitimer``), which interrupts
CPU-bound pure-Python work between bytecodes; on platforms without it
the deadline degrades to unenforced and the runner's hang backstop
takes over.

Extra job kinds (the test suite's stub workers, future attack grids)
register via :func:`register_kind`; pool workers replay registrations
by importing each ``worker_modules`` entry — a dotted module name or a
``.py`` file path — in their initializer.
"""

from __future__ import annotations

import importlib
import importlib.util
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import asdict
from io import StringIO
from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from .cache import NetlistCache
from .matrix import JobSpec, content_id

__all__ = [
    "JobTimeout", "TransientJobError", "register_kind", "execute_job",
    "init_worker", "pool_execute",
]


class JobTimeout(Exception):
    """Raised inside a worker when its wall-clock deadline expires."""


class TransientJobError(RuntimeError):
    """An error worth retrying (flaky infrastructure, not a wrong answer).

    Handlers raise this to mark the attempt retryable; any other
    exception is treated as deterministic and fails the cell for good.
    """


# ----------------------------------------------------------------------
# Kind registry
# ----------------------------------------------------------------------

Handler = Callable[[Dict[str, Any], NetlistCache], Dict[str, Any]]

_KINDS: Dict[str, Handler] = {}


def register_kind(name: str, handler: Optional[Handler] = None):
    """Register a job kind (usable as a decorator)."""
    if handler is not None:
        _KINDS[name] = handler
        return handler

    def decorator(fn: Handler) -> Handler:
        _KINDS[name] = fn
        return fn

    return decorator


def load_worker_modules(modules: Iterable[str]) -> None:
    """Import registration modules (dotted names or ``.py`` paths)."""
    for entry in modules:
        if entry.endswith(".py"):
            spec = importlib.util.spec_from_file_location(
                "repro_campaign_ext_" + content_id("mod", {"path": entry}),
                entry,
            )
            assert spec is not None and spec.loader is not None
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        else:
            importlib.import_module(entry)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------

@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`JobTimeout` after *seconds* of wall-clock time."""
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded {seconds}s wall-clock deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Built-in kinds: the paper's sweeps
# ----------------------------------------------------------------------

#: per-process memo of generated benchmark instances: the four Table II
#: cells of one benchmark share a worker's generation work
_INSTANCE_MEMO: Dict[Any, Any] = {}


def _instance(benchmark: str, seed: int, cache: NetlistCache):
    """One benchmark instance, cheapest source first: the per-process
    memo, then the on-disk cache (pool workers share one generation
    through it), then generation — which also populates the cache."""
    memo_key = (benchmark, seed)
    instance = _INSTANCE_MEMO.get(memo_key)
    if instance is None:
        disk_key = cache.key(kind="bench", benchmark=benchmark, seed=seed)
        instance = cache.get_object(disk_key) if cache.enabled else None
        if instance is None:
            from ..bench.iwls import iwls_benchmark
            from ..netlist.compiled import compile_circuit

            instance = iwls_benchmark(benchmark, seed=seed)
            # Compile before pickling: the compiled IR rides along in
            # the cache entry, so other pool workers skip recompilation.
            compile_circuit(instance.circuit)
            cache.put_object(disk_key, instance)
        if len(_INSTANCE_MEMO) >= 8:
            _INSTANCE_MEMO.clear()
        _INSTANCE_MEMO[memo_key] = instance
    return instance


def _netlist_text(circuit) -> str:
    # Structural Verilog: unlike .bench it can express every cell a
    # locking flow inserts (KEYGEN MUX4s, camouflaged LUTs, ...).
    from ..netlist.verilog_io import write_verilog

    buffer = StringIO()
    write_verilog(circuit, buffer)
    return buffer.getvalue()


def _summary(artifact: Mapping[str, Any]) -> Dict[str, Any]:
    """The part of a cached artifact that travels home to the parent
    (everything except bulky netlist text, which stays on disk)."""
    return {k: v for k, v in artifact.items() if k != "netlist"}


@register_kind("table1")
def _run_table1(params: Dict[str, Any], cache: NetlistCache) -> Dict[str, Any]:
    from ..reporting.tables import table1_row

    name, seed = params["benchmark"], int(params["seed"])
    key = cache.key(kind="table1", benchmark=name, seed=seed)

    def compute() -> Dict[str, Any]:
        row = table1_row(name, instance=_instance(name, seed, cache))
        return {"row": asdict(row)}

    return cache.get_or_compute(key, compute)


@register_kind("table2")
def _run_table2(params: Dict[str, Any], cache: NetlistCache) -> Dict[str, Any]:
    from ..reporting.tables import lock_table2_config

    name = params["benchmark"]
    config = params["config"]
    seed = int(params["seed"])
    run_pnr = bool(params.get("run_pnr", False))
    key = cache.key(kind="table2", benchmark=name, config=config,
                    seed=seed, run_pnr=run_pnr)

    def compute() -> Dict[str, Any]:
        from ..netlist.stats import overhead

        instance = _instance(name, seed, cache)
        locked = lock_table2_config(
            instance.circuit, instance.clock, config, seed=seed,
            run_pnr=run_pnr,
        )
        if locked is None:  # the paper's "-": the configuration won't fit
            return {"benchmark": name, "config": config, "overhead": None,
                    "key": None, "netlist": None}
        oh = overhead(instance.circuit, locked.circuit)
        return {
            "benchmark": name,
            "config": config,
            "overhead": [oh.cell_percent, oh.area_percent],
            "key": locked.key,
            "netlist": _netlist_text(locked.circuit),
        }

    return _summary(cache.get_or_compute(key, compute))


@register_kind("lock")
def _run_lock(params: Dict[str, Any], cache: NetlistCache) -> Dict[str, Any]:
    from ..core.flow import build_scheme
    from ..netlist.stats import overhead

    name = params["benchmark"]
    scheme = params["scheme"]
    key_bits = int(params["key_bits"])
    seed = int(params["seed"])
    key = cache.key(kind="lock", benchmark=name, scheme=scheme,
                    key_bits=key_bits, seed=seed)

    def compute() -> Dict[str, Any]:
        import random

        instance = _instance(name, 2019, cache)
        locked = build_scheme(scheme, instance.clock).lock(
            instance.circuit, key_bits, random.Random(seed)
        )
        oh = overhead(instance.circuit, locked.circuit)
        return {
            "benchmark": name,
            "scheme": scheme,
            "key_bits": key_bits,
            "overhead": [oh.cell_percent, oh.area_percent],
            "key": locked.key,
            "netlist": _netlist_text(locked.circuit),
        }

    return _summary(cache.get_or_compute(key, compute))


@register_kind("attack")
def _run_attack(params: Dict[str, Any], cache: NetlistCache) -> Dict[str, Any]:
    from ..attacks.oracle import CombinationalOracle
    from ..attacks.sat_attack import sat_attack, verify_key_against_oracle
    from ..core.flow import build_scheme, expose_gk_keys

    name = params["benchmark"]
    scheme = params["scheme"]
    attack = params.get("attack", "sat")
    key_bits = int(params["key_bits"])
    seed = int(params["seed"])
    max_iterations = int(params.get("max_iterations", 128))
    portfolio = int(params.get("portfolio", 0))
    # Serial cells keep their historical cache identity; a portfolio
    # width is a new computation (different solver, different stats).
    extra_key = {"portfolio": portfolio} if portfolio else {}
    key = cache.key(kind="attack", benchmark=name, scheme=scheme,
                    attack=attack, key_bits=key_bits, seed=seed,
                    max_iterations=max_iterations, **extra_key)

    def compute() -> Dict[str, Any]:
        import random

        instance = _instance(name, 2019, cache)
        locked = build_scheme(scheme, instance.clock).lock(
            instance.circuit, key_bits, random.Random(seed)
        )
        base = {"benchmark": name, "scheme": scheme, "attack": attack,
                "key_bits": key_bits}
        if attack == "removal":
            from ..attacks.removal import removal_attack

            result = removal_attack(
                locked, samples=300, rng=random.Random(seed + 1)
            )
            base.update(success=result.success)
            return base
        if attack != "sat":
            # Every other family dispatches through the attack
            # registry; the payload carries the normalized outcome.
            from ..attacks.registry import (
                AttackContext, attack_names, run_attack,
            )

            if attack not in attack_names():
                raise ValueError(
                    f"unknown attack {attack!r}; choose from "
                    f"{', '.join(attack_names())}"
                )
            outcome = run_attack(attack, AttackContext(
                locked=locked, clock=instance.clock, seed=seed,
                params=dict(params), cache=cache,
            ))
            base.update(
                success=outcome.success,
                completed=outcome.completed,
                key_correct=outcome.key_correct,
                oracle_queries=outcome.oracle_queries,
                outcome=outcome.to_dict(),
            )
            return base
        # The paper's Sec. VI preprocessing: GK-style schemes are
        # attacked through their exposed Boolean key view.
        target = (
            expose_gk_keys(locked)
            if "gks" in locked.metadata
            else locked.circuit
        )
        # params["oracle"] = "host:port" routes the DIP loop through a
        # served oracle pool (e.g. `repro serve --workers N`) instead
        # of an in-process one.  The cache key deliberately excludes
        # the address: the differential suite pins served answers as
        # bit-identical to local ones, so both runs share one cell.
        oracle_address = params.get("oracle")
        if oracle_address:
            from ..serve import RemoteOracle, ServeError

            try:
                oracle = RemoteOracle(oracle_address,
                                      circuit=instance.circuit)
            except (OSError, ServeError) as exc:
                raise TransientJobError(
                    f"oracle {oracle_address}: {exc}"
                ) from exc
        else:
            oracle = CombinationalOracle(instance.circuit)
        solver = None
        pool_key = None
        if portfolio:
            from ..sat.portfolio import (
                PortfolioSolver, load_shared_clauses, oracle_fingerprint,
                shared_clause_key, store_shared_clauses,
            )

            deadline = params.get("portfolio_deadline")
            solver = PortfolioSolver(
                n=portfolio, base_seed=seed,
                deadline=float(deadline) if deadline else None,
            )
            if cache.enabled:
                pool_key = shared_clause_key(
                    target, "sat", oracle_fingerprint(oracle)
                )
                solver.seed_shared_clauses(
                    load_shared_clauses(cache, pool_key)
                )
        try:
            result = sat_attack(
                target, oracle, max_iterations=max_iterations,
                solver=solver,
            )
            accuracy = None
            if result.key is not None:
                accuracy = verify_key_against_oracle(
                    target, oracle, result.key, samples=32
                )
        except Exception as exc:
            # A dead pool is infrastructure, not a wrong answer.
            if oracle_address and (getattr(exc, "retryable", False)
                                   or isinstance(exc, OSError)):
                raise TransientJobError(
                    f"oracle {oracle_address}: {exc}"
                ) from exc
            raise
        finally:
            if oracle_address:
                oracle.close()
        if solver is not None:
            base["portfolio"] = solver.stats.to_dict()
            if pool_key is not None:
                store_shared_clauses(
                    cache, pool_key, solver.persistable_clauses()
                )
        base.update(
            completed=result.completed,
            iterations=result.iterations,
            unsat_at_first_iteration=result.unsat_at_first_iteration,
            oracle_queries=result.oracle_queries,
            accuracy=accuracy,
        )
        return base

    return cache.get_or_compute(key, compute)


# ----------------------------------------------------------------------
# Execution wrapper
# ----------------------------------------------------------------------

def execute_job(
    spec: Mapping[str, Any],
    cache: Optional[NetlistCache] = None,
    timeout: Optional[float] = None,
    trace_ctx: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one job; always returns a record, never raises.

    The record carries the job outcome (``status`` one of ``ok`` /
    ``error`` / ``timeout``), the payload, the worker's span/metric
    snapshot (``obs``), and the cache hit/miss delta for this job.

    *trace_ctx* is the runner's wire-form trace context.  The job span
    records it, so when the record's ``obs`` payload is adopted back
    into the runner's session the job tree attaches under the
    submitting ``campaign.run`` span — one campaign, one span tree,
    even across pool processes.  It travels as a separate argument,
    never inside the spec: job IDs and cache keys hash the params, and
    a trace ID would perturb both.
    """
    from .. import obs
    from ..obs.propagate import TraceContext, remote_span
    from ..obs.snapshots import capture_payload

    job = spec if isinstance(spec, JobSpec) else JobSpec.from_dict(spec)
    cache = cache if cache is not None else NetlistCache(None)
    handler = _KINDS.get(job.kind)
    hits0, misses0 = cache.hits, cache.misses

    record: Dict[str, Any] = {
        "type": "result",
        "job_id": job.job_id,
        "kind": job.kind,
        "params": job.param_dict,
        "status": "ok",
        "payload": None,
        "error": None,
        "transient": False,
    }
    start = time.perf_counter()
    with obs.capture() as sink:
        ctx = TraceContext.from_wire(trace_ctx)
        with remote_span("campaign.job", ctx, job_id=job.job_id,
                         kind=job.kind):
            try:
                if handler is None:
                    raise ValueError(f"unknown job kind {job.kind!r}")
                with _deadline(timeout):
                    record["payload"] = handler(job.param_dict, cache)
            except JobTimeout as exc:
                record["status"] = "timeout"
                record["error"] = str(exc)
            except TransientJobError as exc:
                record["status"] = "error"
                record["error"] = str(exc)
                record["transient"] = True
            except Exception as exc:  # deterministic failure of one cell
                record["status"] = "error"
                record["error"] = f"{type(exc).__name__}: {exc}"
                record["traceback"] = traceback.format_exc(limit=20)
    record["duration"] = time.perf_counter() - start
    record["obs"] = capture_payload(sink)
    record["cache"] = {"hits": cache.hits - hits0,
                       "misses": cache.misses - misses0}
    return record


# ----------------------------------------------------------------------
# Pool plumbing (must be top-level: pickled by ProcessPoolExecutor)
# ----------------------------------------------------------------------

#: per-worker-process state, set by :func:`init_worker`
_WORKER_CACHE: Optional[NetlistCache] = None


def init_worker(cache_dir: Optional[str], worker_modules: Iterable[str]) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = NetlistCache(cache_dir)
    load_worker_modules(worker_modules)


def pool_execute(spec_dict: Dict[str, Any],
                 timeout: Optional[float],
                 trace_ctx: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
    cache = _WORKER_CACHE if _WORKER_CACHE is not None else NetlistCache(None)
    return execute_job(spec_dict, cache=cache, timeout=timeout,
                       trace_ctx=trace_ctx)
