"""Declarative job matrices.

A :class:`CampaignMatrix` is a job *kind* plus named axes; expansion is
the cross product of the axes in declaration order, so the job list —
and therefore every aggregate built from it — is deterministic.  Each
expanded :class:`JobSpec` gets a content-addressed id (a hash of the
kind and its canonicalized parameters), which is what the result store
and the netlist cache key on: the same cell always resolves to the same
id across runs, processes, and resumes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["JobSpec", "CampaignMatrix", "canonical_json", "content_id"]


def canonical_json(value: Any) -> str:
    """Stable serialization used for hashing and cache keys."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_id(kind: str, params: Mapping[str, Any]) -> str:
    digest = hashlib.sha256(
        canonical_json({"kind": kind, "params": dict(params)}).encode()
    ).hexdigest()
    return f"{kind}-{digest[:12]}"


@dataclass(frozen=True)
class JobSpec:
    """One matrix cell: a job kind plus its parameters."""

    kind: str
    params: Tuple[Tuple[str, Any], ...]

    @classmethod
    def make(cls, kind: str, **params: Any) -> "JobSpec":
        return cls(kind=kind, params=tuple(sorted(params.items())))

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def job_id(self) -> str:
        return content_id(self.kind, self.param_dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.param_dict}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls.make(data["kind"], **data["params"])

    def describe(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class CampaignMatrix:
    """A job kind crossed over named axes, plus fixed parameters.

    >>> m = CampaignMatrix("table2",
    ...                    axes={"benchmark": ["s1238", "s5378"],
    ...                          "config": ["gk4", "gk8"]},
    ...                    fixed={"seed": 2019})
    >>> [j.param_dict["config"] for j in m.expand()]
    ['gk4', 'gk8', 'gk4', 'gk8']
    """

    kind: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    fixed: Tuple[Tuple[str, Any], ...] = ()

    def __init__(
        self,
        kind: str,
        axes: Mapping[str, Sequence[Any]],
        fixed: Optional[Mapping[str, Any]] = None,
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(
            self, "axes",
            tuple((name, tuple(values)) for name, values in axes.items()),
        )
        object.__setattr__(
            self, "fixed", tuple(sorted((fixed or {}).items()))
        )

    # ------------------------------------------------------------------

    def expand(self) -> List[JobSpec]:
        """Cross product of the axes, first axis slowest (row-major)."""
        names = [name for name, _values in self.axes]
        pools = [values for _name, values in self.axes]
        jobs: List[JobSpec] = []
        for combo in itertools.product(*pools):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            jobs.append(JobSpec.make(self.kind, **params))
        return jobs

    def __len__(self) -> int:
        total = 1
        for _name, values in self.axes:
            total *= len(values)
        return total

    @property
    def matrix_id(self) -> str:
        return content_id("matrix." + self.kind, self.to_dict())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "axes": {name: list(values) for name, values in self.axes},
            "fixed": dict(self.fixed),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignMatrix":
        """Build from a small config dict (the CLI ``--matrix`` format)."""
        unknown = set(data) - {"kind", "axes", "fixed"}
        if unknown:
            raise ValueError(f"unknown matrix keys: {sorted(unknown)}")
        if "kind" not in data or "axes" not in data:
            raise ValueError("matrix dict needs 'kind' and 'axes'")
        return cls(data["kind"], data["axes"], data.get("fixed"))

    # ------------------------------------------------------------------
    # The paper's standard sweeps.
    # ------------------------------------------------------------------

    @classmethod
    def table1(
        cls, benchmarks: Iterable[str], seed: int = 2019
    ) -> "CampaignMatrix":
        return cls("table1", {"benchmark": list(benchmarks)}, {"seed": seed})

    @classmethod
    def table2(
        cls,
        benchmarks: Iterable[str],
        configs: Optional[Iterable[str]] = None,
        seed: int = 2019,
    ) -> "CampaignMatrix":
        from ..reporting.tables import TABLE2_CONFIGS

        return cls(
            "table2",
            {"benchmark": list(benchmarks),
             "config": list(configs or TABLE2_CONFIGS)},
            {"seed": seed},
        )

    @classmethod
    def lock(
        cls,
        benchmarks: Iterable[str],
        schemes: Iterable[str],
        key_bits: Iterable[int],
        seeds: Iterable[int] = (2019,),
    ) -> "CampaignMatrix":
        return cls(
            "lock",
            {"benchmark": list(benchmarks), "scheme": list(schemes),
             "key_bits": list(key_bits), "seed": list(seeds)},
        )

    @classmethod
    def attack(
        cls,
        benchmarks: Iterable[str],
        schemes: Iterable[str],
        attacks: Iterable[str] = ("sat",),
        key_bits: Iterable[int] = (8,),
        seeds: Iterable[int] = (2019,),
    ) -> "CampaignMatrix":
        return cls(
            "attack",
            {"benchmark": list(benchmarks), "scheme": list(schemes),
             "attack": list(attacks), "key_bits": list(key_bits),
             "seed": list(seeds)},
        )
