"""repro.campaign — parallel experiment campaign engine.

The paper's whole evaluation is a *sweep*: every table and attack
comparison is a job matrix (benchmark x lock scheme x attack x seed)
whose cells are independent.  This package turns such a matrix into a
batch of isolated jobs fanned out over a ``ProcessPoolExecutor``:

* :mod:`matrix` — declarative job matrices with stable content-hashed
  job ids and a deterministic expansion order;
* :mod:`worker` — the child-process job runner: kind registry,
  wall-clock deadlines (SIGALRM), and per-job observability capture;
* :mod:`cache`  — content-addressed on-disk cache of synthesized /
  locked netlists, so repeated sweeps skip redundant synth+P&R;
* :mod:`store`  — resumable JSONL result store (append-only; rerunning
  a campaign skips already-completed jobs);
* :mod:`runner` — the scheduler: bounded retry with backoff for
  transient failures, crash isolation (a dead worker fails one matrix
  cell, not the campaign), and parent-side adoption of each job's
  span/metric snapshot so ``--profile`` works across process
  boundaries.

The determinism contract: for a fixed matrix, the aggregated results
are byte-identical no matter how many workers ran the campaign, whether
the cache was warm or cold, and whether the run was resumed.
"""

from .cache import NetlistCache
from .matrix import CampaignMatrix, JobSpec
from .runner import CampaignConfig, CampaignResult, run_campaign
from .store import ResultStore
from .worker import (
    JobTimeout,
    TransientJobError,
    execute_job,
    register_kind,
)

__all__ = [
    "CampaignMatrix", "JobSpec",
    "NetlistCache", "ResultStore",
    "CampaignConfig", "CampaignResult", "run_campaign",
    "JobTimeout", "TransientJobError", "execute_job", "register_kind",
]
