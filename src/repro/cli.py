"""Command-line interface: ``python -m repro <command>``.

Gives the library's main flows a tool-like surface operating on
``.bench`` / structural-Verilog netlists:

* ``info``     — netlist statistics and timing summary
* ``lock``     — encrypt a design (gk / xor / sarlock / antisat / tdk /
  hybrid), writing the locked netlist and the key
* ``attack``   — run the SAT attack against a locked netlist + oracle
  (in-process, or served: ``--remote HOST:PORT`` queries an oracle
  server instead)
* ``serve``    — host activated-chip oracles on the asyncio server
  (dynamic lane-wide batching, admission control; see
  :mod:`repro.serve`)
* ``profile``  — run the whole pipeline under the observability
  harness and print the span tree + metrics table
* ``table1`` / ``table2`` — regenerate the paper's tables (fanned out
  over a process-pool campaign; ``--jobs 1`` forces the serial path,
  which produces byte-identical aggregates)
* ``campaign`` — run a declarative job matrix (benchmark x scheme x
  attack x seed) on the campaign engine: ``--jobs N`` workers, per-job
  ``--timeout``, bounded retries, a resumable JSONL result store
  (``--store`` / ``--resume``), and a content-addressed netlist cache
  (``--cache-dir``)
* ``arena``    — run a scheme x attack scenario file (stdlib JSON) on
  the campaign engine and print the leaderboard; incompatible cells
  are skipped with an explicit reason, and ``--store``/``--resume``
  make an interrupted run replay to a byte-identical leaderboard
* ``list``     — the registered locking schemes and attack families
  (names, capability tags, descriptions); every scheme/attack choice
  above is derived from these registries
* ``figures``  — print the paper's timing diagrams
* ``reproduce`` — regenerate the whole evaluation in one run

Scheme and attack ``choices=`` lists are built from
:mod:`repro.locking.registry` / :mod:`repro.attacks.registry` at
parser-construction time, so a newly registered scheme or attack shows
up in ``lock``, ``campaign`` and ``arena`` without touching this file.

Every command accepts three observability flags:

* ``--trace FILE`` — stream spans and the final metric snapshot to
  *FILE* as JSONL (see :mod:`repro.obs`);
* ``--profile``    — print a span tree + metric table to stderr when
  the command finishes;
* ``--quiet``      — suppress informational chatter, keeping only the
  primary result on stdout (trace/metric output goes to stderr, so the
  two streams never mix).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Dict, Optional

from . import __version__
from .attacks.oracle import CombinationalOracle
from .attacks.sat_attack import sat_attack, verify_key_against_oracle
from .bench.iwls import BENCHMARKS, iwls_benchmark
from .locking.base import LockingScheme
from .netlist.bench_io import parse_bench, write_bench
from .netlist.circuit import Circuit
from .netlist.stats import overhead
from .netlist.verilog_io import parse_verilog, write_verilog
from .sta.clock import ClockSpec
from .sta.report import slack_report
from .sta.timing import analyze

__all__ = ["main"]

#: set per-invocation by :func:`main` from ``--quiet``
_QUIET = False


def _emit(text: str = "", *, result: bool = False, err: bool = False) -> None:
    """Print *text*, honouring ``--quiet``.

    Informational lines (the default) are suppressed under ``--quiet``;
    *result* lines — the output a script would parse — always print.
    *err* routes to stderr (observability reports live there, keeping
    stdout machine-readable).
    """
    if _QUIET and not result:
        return
    print(text, file=sys.stderr if err else sys.stdout)


def _load(path: str) -> Circuit:
    if path.startswith("iwls:"):
        return iwls_benchmark(path[5:]).circuit
    with open(path) as stream:
        text = stream.read()
    if path.endswith((".v", ".sv")):
        return parse_verilog(text)
    return parse_bench(text, name=path.rsplit("/", 1)[-1])


def _save(circuit: Circuit, path: str) -> None:
    with open(path, "w") as stream:
        if path.endswith((".v", ".sv")):
            write_verilog(circuit, stream)
        else:
            write_bench(circuit, stream)


def _clock_for(circuit: Circuit, period: Optional[float]) -> ClockSpec:
    if period is not None:
        return ClockSpec(period=period)
    probe = analyze(circuit, ClockSpec(period=1e9))
    critical = max(
        (e.arrival_max + circuit.gates[e.ff].cell.setup
         for e in probe.endpoints.values()),
        default=1.0,
    )
    return ClockSpec(period=round(critical * 1.08 + 0.005, 2))


def _scheme(name: str, clock: ClockSpec) -> LockingScheme:
    from .core.flow import build_scheme

    try:
        return build_scheme(name, clock)
    except KeyError as exc:
        raise SystemExit(str(exc))


def cmd_info(args: argparse.Namespace) -> int:
    circuit = _load(args.netlist)
    stats = circuit.stats()
    _emit(f"name        : {circuit.name}", result=True)
    _emit(f"cells       : {stats.num_cells} "
          f"({stats.num_flip_flops} FFs, {stats.num_combinational} comb)",
          result=True)
    _emit(f"area        : {stats.area:.1f} um^2", result=True)
    _emit(f"ports       : {stats.num_inputs} PIs, {stats.num_key_inputs} "
          f"keys, {stats.num_outputs} POs", result=True)
    if circuit.flip_flops():
        clock = _clock_for(circuit, args.period)
        _emit(f"clock       : {clock.period} ns"
              + ("" if args.period else " (auto: critical x 1.08)"),
              result=True)
        _emit(slack_report(analyze(circuit, clock), limit=args.paths),
              result=True)
    return 0


def cmd_lock(args: argparse.Namespace) -> int:
    circuit = _load(args.netlist)
    clock = _clock_for(circuit, args.period)
    scheme = _scheme(args.scheme, clock)
    rng = random.Random(args.seed)
    locked = scheme.lock(circuit, args.key_bits, rng)
    _emit(f"locked with {args.scheme}: {locked.circuit}")
    _emit(f"overhead: {overhead(circuit, locked.circuit)}")
    if args.output:
        _save(locked.circuit, args.output)
        _emit(f"netlist -> {args.output}")
    if args.key_file:
        with open(args.key_file, "w") as stream:
            json.dump(locked.key, stream, indent=2, sort_keys=True)
        _emit(f"key     -> {args.key_file}")
    else:
        _emit(f"key     : {json.dumps(locked.key, sort_keys=True)}",
              result=True)
    return 0


def _attack_oracle(args: argparse.Namespace):
    """The activated chip: in-process, or a served RemoteOracle."""
    if getattr(args, "remote", None):
        from .serve import RemoteOracle

        if getattr(args, "circuit", None):
            if args.oracle:
                raise SystemExit(
                    "pass an oracle netlist or --circuit, not both"
                )
            oracle = RemoteOracle(args.remote, circuit_id=args.circuit)
        elif args.oracle:
            oracle = RemoteOracle(args.remote, circuit=_load(args.oracle))
        else:
            raise SystemExit(
                "--remote needs an oracle netlist to register or "
                "--circuit ID of an already-served one"
            )
        _emit(f"oracle: {args.remote} circuit {oracle.circuit_id[:16]}...")
        return oracle
    if not args.oracle:
        raise SystemExit("attack needs an oracle netlist (or --remote)")
    return CombinationalOracle(_load(args.oracle))


def _maybe_adopt_remote_trace(args: argparse.Namespace, oracle) -> None:
    """After a ``--remote`` attack under ``--trace``/``--profile``, pull
    the server's buffered span trees home so the report shows one
    stitched tree: client root → route → request → batch flush."""
    if not getattr(args, "remote", None):
        return
    from .obs import context as _obs
    from .serve import adopt_remote_trace

    if _obs.ACTIVE is None:
        return
    adopted = adopt_remote_trace(oracle.connection)
    if adopted:
        _emit(f"adopted {adopted} remote span tree(s)", err=True)


def cmd_attack(args: argparse.Namespace) -> int:
    locked = _load(args.locked)
    oracle = _attack_oracle(args)
    solver = None
    warm_cache = None
    pool_key = None
    if args.portfolio:
        from .sat.portfolio import (
            PortfolioSolver, load_shared_clauses, oracle_fingerprint,
            shared_clause_key,
        )

        solver = PortfolioSolver(
            n=args.portfolio, deadline=args.portfolio_deadline
        )
        if args.warm_cache:
            from .campaign.cache import NetlistCache

            warm_cache = NetlistCache(args.warm_cache)
            pool_key = shared_clause_key(
                locked, "sat", oracle_fingerprint(oracle)
            )
            seeded = solver.seed_shared_clauses(
                load_shared_clauses(warm_cache, pool_key)
            )
            _emit(f"warm-start clauses     : {seeded}")
    try:
        result = sat_attack(locked, oracle,
                            max_iterations=args.max_iterations,
                            solver=solver)
        _emit(f"completed              : {result.completed}", result=True)
        _emit(f"DIP iterations         : {result.iterations}", result=True)
        _emit(f"UNSAT at 1st iteration : {result.unsat_at_first_iteration}",
              result=True)
        _emit(f"oracle queries         : {result.oracle_queries}")
        _emit(f"solver decisions       : {result.solver_decisions}")
        _emit(f"solver conflicts       : {result.solver_conflicts}")
        if solver is not None:
            stats = solver.stats
            _emit(f"portfolio races        : {stats.races} "
                  f"(cancelled {stats.cancelled}, "
                  f"wins {stats.wins or '{}'})")
            _emit(f"shared clause pool     : {stats.shared_pool} "
                  f"(seeded {stats.clauses_seeded}, "
                  f"exported {stats.clauses_exported})")
        if result.key is not None:
            accuracy = verify_key_against_oracle(
                locked, oracle, result.key, samples=args.verify_samples
            )
            _emit(f"recovered key          : "
                  f"{json.dumps(result.key, sort_keys=True)}", result=True)
            _emit(f"functional accuracy    : {accuracy:.3f}", result=True)
            return 0 if accuracy == 1.0 else 1
        _emit("no consistent key", result=True)
        return 1
    finally:
        if solver is not None and pool_key is not None:
            from .sat.portfolio import store_shared_clauses

            kept = store_shared_clauses(
                warm_cache, pool_key, solver.persistable_clauses()
            )
            _emit(f"pool persisted         : {kept} clauses", err=True)
        _maybe_adopt_remote_trace(args, oracle)


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs import JsonlSink, run_profile

    circuit = _load(args.netlist)
    clock = _clock_for(circuit, args.period)
    extra = [JsonlSink(args.trace)] if args.trace else []
    report = run_profile(
        circuit,
        clock,
        key_bits=args.key_bits,
        seed=args.seed,
        max_iterations=args.max_iterations,
        sim_cycles=args.sim_cycles,
        extra_sinks=extra,
    )
    _emit(report.render(), result=True)
    if args.trace:
        _emit(f"trace   -> {args.trace}")
    return 0


def _campaign_config(args: argparse.Namespace,
                     default_store: Optional[str] = None):
    from .campaign import CampaignConfig

    store = getattr(args, "store", None) or default_store
    return CampaignConfig(
        jobs=getattr(args, "jobs", 0),
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 2),
        cache_dir=getattr(args, "cache_dir", None),
        store_path=store,
        resume=bool(getattr(args, "resume", False)) and store is not None,
    )


def _campaign_progress(total: int):
    """Per-job status lines on stderr as results land."""
    done = [0]

    def report(record: Dict) -> None:
        done[0] += 1
        took = record.get("duration")
        took_text = f"{took:6.2f}s" if took is not None else "      -"
        cache = record.get("cache") or {}
        hit = " cache" if cache.get("hits") else ""
        _emit(
            f"[{done[0]:>3}/{total}] {record['status']:<8}{took_text}  "
            f"{record['kind']}({_params_text(record['params'])})"
            f"{hit}",
            err=True,
        )

    return report


def _params_text(params: Dict) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(params.items()))


def _warn_failures(result) -> None:
    for record in result.failed():
        _emit(
            f"FAILED {record['kind']}({_params_text(record['params'])}): "
            f"{record['status']} after {record.get('attempts', 1)} "
            f"attempt(s): {record.get('error')}",
            result=True, err=True,
        )


def cmd_table1(args: argparse.Namespace) -> int:
    from .campaign import CampaignMatrix, run_campaign
    from .reporting.tables import format_table1, table1_row_from_dict

    names = args.benchmarks or list(BENCHMARKS)
    result = run_campaign(
        CampaignMatrix.table1(names),
        _campaign_config(args),
        progress=_campaign_progress(len(names)),
    )
    rows = [
        table1_row_from_dict(record["payload"]["row"])
        for record in result.ordered()
        if record["status"] == "ok"
    ]
    _emit(format_table1(rows), result=True)
    _warn_failures(result)
    return 0 if result.ok else 1


def cmd_table2(args: argparse.Namespace) -> int:
    from .campaign import CampaignMatrix, run_campaign
    from .reporting.tables import format_table2, table2_rows_from_cells

    names = args.benchmarks or list(BENCHMARKS)
    matrix = CampaignMatrix.table2(names)
    result = run_campaign(
        matrix,
        _campaign_config(args),
        progress=_campaign_progress(len(matrix)),
    )
    cells = {
        (record["params"]["benchmark"], record["params"]["config"]):
            record["payload"]["overhead"]
        for record in result.ordered()
        if record["status"] == "ok"
    }
    rows = table2_rows_from_cells(cells, names)
    _emit(format_table2(rows), result=True)
    _warn_failures(result)
    return 0 if result.ok else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    import json as _json

    from .campaign import CampaignMatrix, run_campaign

    if args.matrix:
        text = args.matrix
        if not text.lstrip().startswith("{"):
            with open(text) as stream:
                text = stream.read()
        matrix = CampaignMatrix.from_dict(_json.loads(text))
    else:
        seeds = args.seeds or [2019]
        benchmarks = args.benchmarks or list(BENCHMARKS)
        if args.kind == "table1":
            matrix = CampaignMatrix.table1(benchmarks, seed=seeds[0])
        elif args.kind == "table2":
            matrix = CampaignMatrix.table2(
                benchmarks, configs=args.configs or None, seed=seeds[0]
            )
        elif args.kind == "lock":
            matrix = CampaignMatrix.lock(
                benchmarks, args.schemes or ["gk"],
                args.key_bits or [8], seeds,
            )
        else:
            matrix = CampaignMatrix.attack(
                benchmarks, args.schemes or ["gk", "xor"],
                args.attacks or ["sat"], args.key_bits or [8], seeds,
            )

    config = _campaign_config(args, default_store="campaign.jsonl")
    _emit(
        f"campaign {matrix.kind}: {len(matrix)} jobs on "
        f"{config.resolve_jobs(len(matrix))} worker(s)"
        + (f", store={config.store_path}" if config.store_path else "")
        + (f", cache={config.cache_dir}" if config.cache_dir else "")
    )
    result = run_campaign(
        matrix, config, progress=_campaign_progress(len(matrix))
    )

    if matrix.kind in ("table1", "table2"):
        _emit(_render_campaign_table(matrix, result), result=True)
    counts = " ".join(
        f"{status}={count}"
        for status, count in sorted(result.status_counts.items())
    )
    cache = result.cache_stats()
    _emit(
        f"done in {result.wall_seconds:.2f}s: {counts}; resumed "
        f"{result.resumed}; cache hits={cache['hits']} "
        f"misses={cache['misses']}",
        result=True,
    )
    _warn_failures(result)
    return 0 if result.ok else 1


def _render_campaign_table(matrix, result) -> str:
    from .reporting.tables import (
        format_table1,
        format_table2,
        table1_row_from_dict,
        table2_rows_from_cells,
    )

    ok = [r for r in result.ordered() if r["status"] == "ok"]
    if matrix.kind == "table1":
        return format_table1(
            [table1_row_from_dict(r["payload"]["row"]) for r in ok]
        )
    benchmarks = list(dict.fromkeys(
        record["params"]["benchmark"] for record in result.ordered()
    ))
    cells = {
        (r["params"]["benchmark"], r["params"]["config"]):
            r["payload"]["overhead"]
        for r in ok
    }
    return format_table2(table2_rows_from_cells(cells, benchmarks))


def cmd_arena(args: argparse.Namespace) -> int:
    from .arena import Scenario, run_arena
    from .reporting.leaderboard import format_leaderboard, leaderboard_markdown

    try:
        scenario = Scenario.from_file(args.scenario)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))

    config = _campaign_config(args, default_store=f"{scenario.name}.jsonl")
    runnable, skipped = scenario.cells()
    _emit(
        f"arena {scenario.name}: {len(runnable)} cells "
        f"({len(skipped)} skipped) on "
        f"{config.resolve_jobs(len(runnable))} worker(s)"
        + (f", store={config.store_path}" if config.store_path else "")
        + (f", cache={config.cache_dir}" if config.cache_dir else "")
    )
    result = run_arena(
        scenario, config, progress=_campaign_progress(len(runnable))
    )

    _emit(format_leaderboard(result), result=True)
    if args.markdown:
        with open(args.markdown, "w") as stream:
            stream.write(leaderboard_markdown(result))
        _emit(f"markdown -> {args.markdown}")
    _warn_failures(result.campaign)
    return 0 if result.ok else 1


def cmd_list(args: argparse.Namespace) -> int:
    from .attacks.registry import attack_infos
    from .locking.registry import scheme_infos

    lines = ["locking schemes:"]
    for info in scheme_infos():
        tags = f"  [{', '.join(sorted(info.tags))}]" if info.tags else ""
        lines.append(f"  {info.name:<18}{info.description}{tags}")
    lines.append("")
    lines.append("attack families:")
    for info in attack_infos():
        tags = f"  [{', '.join(sorted(info.tags))}]" if info.tags else ""
        lines.append(f"  {info.name:<18}{info.description}{tags}")
    _emit("\n".join(lines), result=True)
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from .reporting.summary import reproduce

    reproduce(fast=not args.full,
              echo=lambda text: _emit(text, result=True), seed=args.seed,
              jobs=args.jobs, cache_dir=args.cache_dir)
    return 0


def _fleet_trace_buffer():
    """Make sure the active session buffers span trees for the ``obs``
    op (``--fleet-trace``); enables a session when none is active."""
    from . import obs
    from .obs import context as _obs
    from .obs.sinks import SpanBuffer

    buffer = SpanBuffer()
    session = _obs.ACTIVE
    if session is None:
        obs.enable(buffer)
    else:
        session.sinks.append(buffer)
    return buffer


def _write_metrics_file(path: str, text: str) -> None:
    """Atomic replace, so a scraper never reads a half-written dump."""
    import os

    tmp = f"{path}.tmp"
    with open(tmp, "w") as stream:
        stream.write(text)
    os.replace(tmp, path)


def _install_obs_dumper(path: str, interval_s: float, handle):
    """Periodic (and SIGUSR1-triggered) Prometheus-text dump.

    *handle* is the endpoint's async dispatcher; each dump asks it for
    the ``obs`` snapshot and rewrites *path* atomically.  Returns the
    periodic task (or None when the interval is 0) for cancellation.
    """
    import asyncio
    import signal as _signal

    from .obs.export import render_exposition

    loop = asyncio.get_running_loop()

    async def dump() -> None:
        try:
            response = await handle({"op": "obs"})
            _write_metrics_file(path, render_exposition(response))
        except Exception as exc:  # noqa: BLE001 - keep serving
            _emit(f"metrics dump failed: {exc}", err=True)

    async def periodic() -> None:
        while True:
            await asyncio.sleep(interval_s)
            await dump()

    if hasattr(_signal, "SIGUSR1"):
        try:
            loop.add_signal_handler(
                _signal.SIGUSR1, lambda: loop.create_task(dump()))
        except (NotImplementedError, RuntimeError):
            pass  # platforms/loops without signal handler support
    return loop.create_task(periodic()) if interval_s > 0 else None


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import (
        AdmissionConfig,
        BatchConfig,
        OracleServer,
        ServerConfig,
    )

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.lanes is not None:
        from .netlist.compiled import check_lanes

        try:
            check_lanes(args.lanes)
        except ValueError as exc:
            raise SystemExit(f"--lanes: {exc}")
    batch = BatchConfig(
        max_batch=args.max_batch,
        window_s=args.window_ms / 1000.0,
    )
    admission = AdmissionConfig(max_pending=args.max_pending)
    circuits = [(_load(path), path) for path in args.netlists]

    if args.workers > 1:
        return _serve_sharded(args, batch, admission, circuits)

    config = ServerConfig(
        host=args.host,
        port=args.port,
        batch=batch,
        admission=admission,
        default_budget=args.budget,
        lanes=args.lanes,
        trace=args.fleet_trace,
        slow_log_path=args.slow_log,
        slow_request_s=args.slow_threshold_ms / 1000.0,
    )
    if args.fleet_trace:
        _fleet_trace_buffer()
    server = OracleServer(config=config)

    async def run() -> None:
        for circuit, path in circuits:
            entry = server.registry.register(
                _oracle_view(circuit), budget=args.budget
            )
            _emit(f"{entry.circuit_id}  {path} "
                  f"({len(entry.compiled.inputs)} in, "
                  f"{len(entry.compiled.outputs)} out)", result=True)
        host, port = await server.start()
        _emit(f"serving {len(circuits)} circuit(s) on {host}:{port} "
              f"({server.registry.lane_width()} lanes, "
              f"batch<= {server.batcher.max_batch}, "
              f"window {args.window_ms}ms)",
              result=True)
        dumper = None
        if args.metrics_file:
            dumper = _install_obs_dumper(
                args.metrics_file, args.metrics_interval, server.handle)
        try:
            if args.serve_seconds is not None:
                await asyncio.sleep(args.serve_seconds)
            else:
                await server.serve_forever()
        finally:
            if dumper is not None:
                dumper.cancel()
            await server.drain()
            if args.metrics_file:
                response = await server.handle({"op": "obs"})
                from .obs.export import render_exposition
                _write_metrics_file(args.metrics_file,
                                    render_exposition(response))
            stats = server.batcher.stats()
            _emit(f"drained: {stats['batches']} batches, "
                  f"{stats['lanes_total']} queries, occupancy mean "
                  f"{stats['occupancy_mean']}", err=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        _emit("interrupted; drained", err=True)
    return 0


def _serve_sharded(args: argparse.Namespace, batch, admission,
                   circuits) -> int:
    """``repro serve --workers N``: the multi-process backend."""
    import asyncio
    import io

    from .netlist.bench_io import write_bench
    from .serve import ShardConfig, ShardSupervisor

    def _bench_text(circuit) -> str:
        stream = io.StringIO()
        write_bench(circuit, stream)
        return stream.getvalue()

    supervisor = ShardSupervisor(ShardConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        batch=batch,
        admission=admission,
        default_budget=args.budget,
        lanes=args.lanes,
        trace=args.fleet_trace,
        slow_log_path=args.slow_log,
        slow_request_s=args.slow_threshold_ms / 1000.0,
    ))
    if args.fleet_trace:
        # The supervisor's own routing spans ship through this buffer
        # alongside the worker trees its polling loop collects.
        supervisor.span_buffer = _fleet_trace_buffer()

    async def run() -> None:
        host, port = await supervisor.start()
        try:
            # Register through the supervisor itself, so each netlist
            # lands on (and is restored to) the worker the ring assigns.
            for circuit, path in circuits:
                request = {
                    "op": "register",
                    "netlist": _bench_text(_oracle_view(circuit)),
                    "name": circuit.name,
                }
                if args.budget is not None:
                    request["budget"] = args.budget
                response = await supervisor.handle(request)
                if not response.get("ok"):
                    raise SystemExit(f"{path}: {response.get('error')}")
                owner = supervisor.owner_index(response["circuit"])
                _emit(f"{response['circuit']}  {path} "
                      f"(worker {owner})", result=True)
            # Workers resolve max_batch=None against their own registry
            # width; mirror that resolution for the banner.
            from .netlist.compiled import default_lanes
            lanes = args.lanes if args.lanes is not None else default_lanes()
            batch_width = (batch.max_batch if batch.max_batch is not None
                           else lanes)
            _emit(f"serving {len(circuits)} circuit(s) on {host}:{port} "
                  f"({args.workers} workers, {lanes} lanes, "
                  f"batch<= {batch_width}, "
                  f"window {args.window_ms}ms)", result=True)
            dumper = None
            if args.metrics_file:
                dumper = _install_obs_dumper(
                    args.metrics_file, args.metrics_interval,
                    supervisor.handle)
            try:
                if args.serve_seconds is not None:
                    await asyncio.sleep(args.serve_seconds)
                else:
                    await supervisor.serve_forever()
            finally:
                if dumper is not None:
                    dumper.cancel()
        finally:
            # The drain covers registration failures too: workers are
            # real child processes and must not outlive a SystemExit.
            await supervisor.drain()
            _emit(f"drained: {supervisor.requests} requests, "
                  f"{supervisor.respawned_total} respawns", err=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        _emit("interrupted; drained", err=True)
    return 0


def _oracle_view(circuit: Circuit):
    """Same normalization the server applies to registered netlists."""
    from .netlist.transform import extract_combinational

    if circuit.key_inputs:
        raise SystemExit(
            f"{circuit.name}: refusing to serve a locked netlist — an "
            f"oracle wraps the original (keyless) design"
        )
    if circuit.flip_flops():
        return extract_combinational(circuit).circuit
    return circuit


def cmd_top(args: argparse.Namespace) -> int:
    """Live fleet dashboard: plain full redraws, no curses."""
    import time as _time

    from .obs.export import render_top
    from .serve import ServeConnection

    connection = ServeConnection(args.address)
    try:
        while True:
            response = connection.fetch_obs()
            fleet = response.get("fleet") or {}
            clock_text = _time.strftime("%H:%M:%S")
            if not args.once:
                # ANSI clear + home: a dumb full redraw works on any
                # terminal a CI log might replay, unlike curses.
                sys.stdout.write("\x1b[2J\x1b[H")
            _emit(render_top(fleet, clock_text=clock_text), result=True)
            if args.once:
                return 0
            sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        connection.close()


def cmd_figures(args: argparse.Namespace) -> int:
    from .reporting.figures import (
        figure4_gk_waveform,
        figure6_keygen_waveform,
        figure7_scenarios,
        figure9_trigger_windows,
    )

    for figure in (
        figure4_gk_waveform(),
        figure6_keygen_waveform(),
        figure7_scenarios(),
        figure9_trigger_windows(),
    ):
        _emit("=" * 74, result=True)
        _emit(figure.title, result=True)
        _emit(figure.diagram, result=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    obs_flags = argparse.ArgumentParser(add_help=False)
    group = obs_flags.add_argument_group("observability")
    group.add_argument("--trace", metavar="FILE",
                       help="write spans + metrics to FILE as JSONL")
    group.add_argument("--profile", action="store_true",
                       help="print a span tree + metric table to stderr")
    group.add_argument("--quiet", "-q", action="store_true",
                       help="suppress informational output on stdout")

    pool_flags = argparse.ArgumentParser(add_help=False)
    group = pool_flags.add_argument_group("campaign")
    group.add_argument("--jobs", "-j", type=int, default=0, metavar="N",
                       help="worker processes (0 = one per CPU core; "
                            "1 = serial, in-process)")
    group.add_argument("--timeout", type=float, metavar="SEC",
                       help="per-job wall-clock deadline")
    group.add_argument("--retries", type=int, default=2, metavar="N",
                       help="extra attempts for transient failures")
    group.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed netlist cache directory")
    group.add_argument("--store", metavar="FILE",
                       help="JSONL result store (one record per job)")
    group.add_argument("--resume", action="store_true",
                       help="skip jobs already completed in --store")

    # Every scheme/attack choices= list below derives from the
    # registries — a new @register_scheme/@register_attack shows up
    # here without edits (asserted by tests/test_cli_registry_drift.py).
    from .attacks.registry import attack_names
    from .locking.registry import scheme_names
    from .reporting.tables import TABLE2_CONFIGS

    schemes = list(scheme_names())
    attacks = list(attack_names())

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Glitch Key-gate logic locking — paper reproduction CLI",
        epilog=f"repro version {__version__}",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="netlist statistics and timing",
                       parents=[obs_flags])
    p.add_argument("netlist", help=".bench/.v file, or iwls:<name>")
    p.add_argument("--period", type=float, help="clock period in ns")
    p.add_argument("--paths", type=int, default=10, help="endpoints to list")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("lock", help="encrypt a design", parents=[obs_flags])
    p.add_argument("netlist")
    p.add_argument("--scheme", default="gk", choices=schemes)
    p.add_argument("--key-bits", type=int, default=8)
    p.add_argument("--seed", type=int, default=2019)
    p.add_argument("--period", type=float)
    p.add_argument("--output", "-o", help="write the locked netlist here")
    p.add_argument("--key-file", help="write the correct key (JSON) here")
    p.set_defaults(func=cmd_lock)

    p = sub.add_parser("attack", help="SAT-attack a locked netlist",
                       parents=[obs_flags])
    p.add_argument("locked", help="locked netlist (key inputs present)")
    p.add_argument("oracle", nargs="?",
                   help="original netlist (the activated chip); optional "
                        "with --remote --circuit")
    p.add_argument("--max-iterations", type=int, default=256)
    p.add_argument("--verify-samples", type=int, default=64)
    p.add_argument("--portfolio", type=int, default=0, metavar="N",
                   help="race N solver configurations per DIP query "
                        "(0 = the serial incremental solver)")
    p.add_argument("--portfolio-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-race wall-clock budget for portfolio members")
    p.add_argument("--warm-cache", metavar="DIR",
                   help="persist the portfolio's shared clause pool in "
                        "this cache directory: repeated attacks on the "
                        "same netlist+oracle warm-start from it")
    p.add_argument("--remote", metavar="HOST:PORT",
                   help="query a served oracle instead of an in-process "
                        "one (see `repro serve`)")
    p.add_argument("--circuit", metavar="ID",
                   help="content hash of an already-served circuit "
                        "(skips registering the oracle netlist)")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser(
        "serve",
        help="host activated-chip oracles (lane-wide dynamic batching)",
        parents=[obs_flags],
    )
    p.add_argument("netlists", nargs="+", metavar="NETLIST",
                   help=".bench/.v file or iwls:<name> — the *original* "
                        "(keyless) designs to serve")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed on startup)")
    p.add_argument("--lanes", type=int, default=None, metavar="N",
                   help="bit-parallel lane width circuits are compiled "
                        "at — any positive multiple of 64 (default: "
                        "REPRO_LANES or 64); sharded workers inherit it")
    p.add_argument("--max-batch", type=int, default=None, metavar="N",
                   help="lanes per batch flush; 1 disables coalescing "
                        "(default: match --lanes)")
    p.add_argument("--window-ms", type=float, default=2.0, metavar="MS",
                   help="max latency a lone query waits for co-batching")
    p.add_argument("--max-pending", type=int, default=1024, metavar="N",
                   help="admission bound on queued patterns")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes; >1 shards circuits across a "
                        "supervised fleet by consistent hash (each "
                        "circuit owned by exactly one worker)")
    p.add_argument("--budget", type=int, metavar="N",
                   help="per-circuit query budget (refuse queries beyond)")
    p.add_argument("--serve-seconds", type=float, metavar="SEC",
                   help="run for SEC seconds then drain (CI smoke mode; "
                        "default: serve until interrupted)")
    group = p.add_argument_group("fleet observability")
    group.add_argument("--metrics-file", metavar="FILE",
                       help="dump a Prometheus-style text snapshot to "
                            "FILE (atomic replace) every "
                            "--metrics-interval seconds and on SIGUSR1")
    group.add_argument("--metrics-interval", type=float, default=5.0,
                       metavar="SEC",
                       help="seconds between --metrics-file dumps "
                            "(0 = SIGUSR1 only)")
    group.add_argument("--slow-log", metavar="FILE",
                       help="always-on JSONL log of slow/refused "
                            "requests (workers append to FILE.wN)")
    group.add_argument("--slow-threshold-ms", type=float, default=1000.0,
                       metavar="MS",
                       help="answered requests at or above MS are "
                            "logged as slow (errors always are)")
    group.add_argument("--fleet-trace", action="store_true",
                       help="trace inside the serving processes and "
                            "buffer span trees for the obs op / remote "
                            "trace adoption")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "top",
        help="live fleet view of a serve endpoint (plain redraw)",
        parents=[obs_flags],
    )
    p.add_argument("address", metavar="HOST:PORT",
                   help="a `repro serve` endpoint (single or sharded)")
    p.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                   help="seconds between refreshes")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (no redraw)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "profile",
        help="profile the whole GK pipeline (synth/P&R/STA/lock/attack/sim)",
        parents=[obs_flags],
    )
    p.add_argument("netlist", help=".bench/.v file, or iwls:<name>")
    p.add_argument("--key-bits", type=int, default=8)
    p.add_argument("--seed", type=int, default=2019)
    p.add_argument("--period", type=float)
    p.add_argument("--max-iterations", type=int, default=64)
    p.add_argument("--sim-cycles", type=int, default=8)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("table1", help="regenerate paper Table I",
                       parents=[obs_flags, pool_flags])
    p.add_argument("benchmarks", nargs="*", choices=list(BENCHMARKS) + [[]])
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="regenerate paper Table II",
                       parents=[obs_flags, pool_flags])
    p.add_argument("benchmarks", nargs="*", choices=list(BENCHMARKS) + [[]])
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser(
        "campaign",
        help="run a declarative experiment matrix on the process pool",
        parents=[obs_flags, pool_flags],
    )
    p.add_argument("--kind", default="table2",
                   choices=["table1", "table2", "lock", "attack"],
                   help="job kind when building the matrix from flags")
    p.add_argument("--matrix", metavar="JSON|FILE",
                   help="full matrix spec as a JSON dict "
                        '(e.g. \'{"kind": "lock", "axes": {...}}\') '
                        "or a path to one; overrides the axis flags")
    p.add_argument("--benchmarks", nargs="*", choices=list(BENCHMARKS),
                   metavar="BENCH", help="benchmark axis (default: all)")
    p.add_argument("--configs", nargs="*", choices=list(TABLE2_CONFIGS),
                   help="table2 configuration axis")
    p.add_argument("--schemes", nargs="*", choices=schemes,
                   help="locking-scheme axis (lock/attack kinds)")
    p.add_argument("--attacks", nargs="*", choices=attacks,
                   help="attack axis (attack kind)")
    p.add_argument("--key-bits", nargs="*", type=int, metavar="N",
                   help="key-width axis (lock/attack kinds)")
    p.add_argument("--seeds", nargs="*", type=int, metavar="N",
                   help="seed axis")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "arena",
        help="run a scheme x attack scenario and print the leaderboard",
        parents=[obs_flags, pool_flags],
    )
    p.add_argument("scenario", metavar="SCENARIO.json",
                   help="declarative scenario file (see repro.arena)")
    p.add_argument("--markdown", metavar="FILE",
                   help="also write the leaderboard as markdown to FILE")
    p.set_defaults(func=cmd_arena)

    p = sub.add_parser(
        "list",
        help="registered locking schemes and attack families",
        parents=[obs_flags],
    )
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("figures", help="regenerate paper Figs. 4/6/7/9",
                       parents=[obs_flags])
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "reproduce", help="regenerate the paper's whole evaluation",
        parents=[obs_flags, pool_flags],
    )
    p.add_argument("--full", action="store_true",
                   help="run the SAT attack on three benchmarks, not one")
    p.add_argument("--seed", type=int, default=2019)
    p.set_defaults(func=cmd_reproduce)
    return parser


def main(argv: Optional[list] = None) -> int:
    global _QUIET
    parser = build_parser()
    args = parser.parse_args(argv)
    _QUIET = bool(getattr(args, "quiet", False))

    # `profile` manages its own observability session (run_profile) and
    # threads --trace through as an extra sink; every other command gets
    # a session assembled here from the shared flags.
    if args.func is cmd_profile:
        return args.func(args)

    from . import obs

    sinks = []
    memory = None
    if getattr(args, "trace", None):
        sinks.append(obs.JsonlSink(args.trace))
    if getattr(args, "profile", False):
        memory = obs.InMemorySink()
        sinks.append(memory)
    if not sinks:
        return args.func(args)

    session = obs.enable(*sinks)
    try:
        code = args.func(args)
        snapshot = session.publish_metrics()
    finally:
        obs.disable()
    if memory is not None:
        _emit(obs.render_span_tree(memory.roots), result=True, err=True)
        _emit("", result=True, err=True)
        _emit(obs.render_metrics_table(snapshot), result=True, err=True)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
