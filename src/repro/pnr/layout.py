"""Layout data model for the P&R substrate.

A :class:`Layout` records where each gate instance landed on the row
grid plus the derived geometry statistics.  The router annotates wire
delays from it, and the Table II flow re-runs placement after every GK
insertion just as the paper re-runs IC Compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..netlist.circuit import Circuit

__all__ = ["Layout"]


@dataclass
class Layout:
    """Placement result.

    Attributes:
        circuit: The placed circuit (not copied).
        positions: Gate name -> (x, y) placement site in um.
        width: Die width in um.
        height: Die height in um.
        row_height: Height of a placement row in um.
    """

    circuit: Circuit
    positions: Dict[str, Tuple[float, float]]
    width: float
    height: float
    row_height: float

    @property
    def die_area(self) -> float:
        return self.width * self.height

    @property
    def utilization(self) -> float:
        cell_area = sum(g.cell.area for g in self.circuit.gates.values())
        return cell_area / self.die_area if self.die_area else 0.0

    def distance(self, gate_a: str, gate_b: str) -> float:
        """Manhattan distance between two placed gates."""
        ax, ay = self.positions[gate_a]
        bx, by = self.positions[gate_b]
        return abs(ax - bx) + abs(ay - by)

    def net_bbox(self, net: str) -> Tuple[float, float]:
        """(width, height) of the bounding box of a net's pins."""
        points = []
        driver = self.circuit.driver_of(net)
        if driver is not None:
            points.append(self.positions[driver.name])
        for gate_name, _pin in self.circuit.fanout_pins(net):
            points.append(self.positions[gate_name])
        if len(points) < 2:
            return (0.0, 0.0)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return (max(xs) - min(xs), max(ys) - min(ys))

    def net_hpwl(self, net: str) -> float:
        """Half-perimeter wirelength of a net."""
        w, h = self.net_bbox(net)
        return w + h
