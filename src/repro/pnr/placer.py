"""Connectivity-driven grid placement (the IC Compiler stand-in).

The placer is deliberately simple but real: cells are seeded onto a
row grid in breadth-first order from the primary inputs (so logic
stages flow left-to-right), then refined with a few passes of
force-directed "median of neighbours" improvement with row re-
legalization.  Output quality only needs to be good enough that wire
delays correlate with logical proximity — which this achieves — since
the paper's claims never depend on absolute routed delay.

Deterministic: same circuit in, same layout out.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..obs.spans import trace_span
from .layout import Layout

__all__ = ["place"]

_ROW_HEIGHT = 3.69  # um, a typical 0.13um standard-cell row height
_TARGET_UTILIZATION = 0.70


def _bfs_order(circuit: Circuit) -> List[str]:
    """Gates in breadth-first order from the PIs/FF outputs."""
    order: List[str] = []
    seen = set()
    frontier: deque = deque()
    sources = list(circuit.inputs) + list(circuit.key_inputs)
    sources += [ff.output for ff in sorted(circuit.flip_flops(), key=lambda g: g.name)]
    for net in sources:
        frontier.append(net)
    visited_nets = set(sources)
    while frontier:
        net = frontier.popleft()
        for gate_name, _pin in circuit.fanout_pins(net):
            if gate_name in seen:
                continue
            seen.add(gate_name)
            order.append(gate_name)
            out = circuit.gates[gate_name].output
            if out not in visited_nets:
                visited_nets.add(out)
                frontier.append(out)
    # Anything unreachable from the inputs (e.g. tie cells) goes last.
    for name in sorted(circuit.gates):
        if name not in seen:
            order.append(name)
    return order


def _legalize(
    order: List[str], circuit: Circuit, width: float
) -> Dict[str, Tuple[float, float]]:
    """Pack gates into rows (in the given order), returning positions."""
    positions: Dict[str, Tuple[float, float]] = {}
    x = 0.0
    row = 0
    for name in order:
        gate = circuit.gates[name]
        cell_width = gate.cell.area / _ROW_HEIGHT
        if x + cell_width > width and x > 0.0:
            row += 1
            x = 0.0
        positions[name] = (x + cell_width / 2.0, (row + 0.5) * _ROW_HEIGHT)
        x += cell_width
    return positions


def place(circuit: Circuit, refinement_passes: int = 3) -> Layout:
    """Place *circuit* on a square-ish die at ~70% utilization."""
    with trace_span("pnr.place", design=circuit.name,
                    cells=len(circuit.gates)):
        return _place(circuit, refinement_passes)


def _place(circuit: Circuit, refinement_passes: int) -> Layout:
    total_area = sum(g.cell.area for g in circuit.gates.values())
    if total_area == 0.0:
        return Layout(circuit, {}, 0.0, 0.0, _ROW_HEIGHT)
    die_area = total_area / _TARGET_UTILIZATION
    width = math.sqrt(die_area)
    rows = max(1, int(math.ceil(die_area / width / _ROW_HEIGHT)))
    height = rows * _ROW_HEIGHT

    order = _bfs_order(circuit)
    positions = _legalize(order, circuit, width)

    # Force-directed refinement: move each gate toward the centroid of
    # its neighbours, then re-legalize by sorting on the new coordinate.
    neighbours: Dict[str, List[str]] = {name: [] for name in circuit.gates}
    for gate in circuit.gates.values():
        nets = set(gate.pins.values()) | {gate.output}
        for net in nets:
            if net == circuit.clock:
                continue
            driver = circuit.driver_of(net)
            if driver is not None and driver.name != gate.name:
                neighbours[gate.name].append(driver.name)
            for sink_name, _pin in circuit.fanout_pins(net):
                if sink_name != gate.name:
                    neighbours[gate.name].append(sink_name)

    for _ in range(refinement_passes):
        desired: Dict[str, Tuple[float, float]] = {}
        for name, near in neighbours.items():
            if not near:
                desired[name] = positions[name]
                continue
            cx = sum(positions[n][0] for n in near) / len(near)
            cy = sum(positions[n][1] for n in near) / len(near)
            desired[name] = (cx, cy)
        # Re-legalize: order by desired (y, x) and repack rows.
        new_order = sorted(
            circuit.gates, key=lambda n: (desired[n][1], desired[n][0], n)
        )
        positions = _legalize(new_order, circuit, width)

    return Layout(circuit, positions, width, height, _ROW_HEIGHT)
