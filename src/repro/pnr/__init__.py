"""Place & route substrate (the IC Compiler stand-in)."""

from .layout import Layout
from .placer import place
from .router import RoutingEstimate, route

__all__ = ["Layout", "place", "RoutingEstimate", "route"]
