"""Wirelength estimation and wire-delay annotation.

Routes are modeled as half-perimeter wirelength (HPWL) of each net's
pin bounding box; the wire delay of a net is a linear function of its
HPWL plus a per-sink fanout charge.  The resulting ``net -> delay`` map
feeds straight into :func:`repro.sta.timing.analyze` as the post-layout
annotation — closing the synthesize / place / re-time loop of the
paper's design flow (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..obs.spans import trace_span
from .layout import Layout

__all__ = ["RoutingEstimate", "route"]

#: ns of delay per um of HPWL (a plausible 0.13um RC figure for short nets)
_DELAY_PER_UM = 0.0006
#: extra ns per fanout pin (pin capacitance charge)
_DELAY_PER_SINK = 0.002


@dataclass(frozen=True)
class RoutingEstimate:
    """Result of :func:`route`."""

    wire_delay: Dict[str, float]  # net -> ns, for STA annotation
    total_hpwl: float  # um

    def delay_of(self, net: str) -> float:
        return self.wire_delay.get(net, 0.0)


def route(layout: Layout) -> RoutingEstimate:
    """Estimate wire delays for every net of the placed circuit."""
    circuit = layout.circuit
    with trace_span("pnr.route", design=circuit.name) as span:
        wire_delay: Dict[str, float] = {}
        total = 0.0
        for net in sorted(circuit.nets()):
            if net == circuit.clock:
                continue  # the clock tree is modeled by ClockSpec skews
            sinks = circuit.fanout_pins(net)
            hpwl = layout.net_hpwl(net)
            total += hpwl
            delay = hpwl * _DELAY_PER_UM + len(sinks) * _DELAY_PER_SINK
            if delay > 0.0:
                wire_delay[net] = delay
        span.annotate(nets=len(wire_delay), hpwl=round(total, 1))
    return RoutingEstimate(wire_delay=wire_delay, total_hpwl=total)
