"""Enhanced removal attack: locate GKs, re-model them, SAT-attack
(paper Sec. V-D).

The scenario the paper analyzes:

1. **Locate** each security structure.  Our locator does real
   structural pattern matching: a GK looks like a MUX2 whose select net
   also drives exactly one XOR2 and one XNOR2 sharing a second common
   operand, whose outputs reach the MUX data pins through buffer
   (delay) chains, with the MUX feeding a flip-flop's D input (possibly
   behind nothing else).
2. **Replace** the located structure by "a MUX having multiple
   encryption behavior from the MUX's inputs and selected by
   key-inputs": here, ``MUX(x, x', k)`` with a fresh Boolean key bit —
   the buffer/inverter hypothesis space of one GK.
3. **SAT-attack** the re-modeled netlist: each hypothesis bit is now an
   ordinary, combinationally *influential* key bit, so the DIP loop
   resolves it against the oracle.  The attack therefore decrypts
   GK-only designs — "effective to decrypt circuits when the security
   structures are located".

The defense is withholding (Sec. V-D, :mod:`repro.core.withholding`):
with the GK arms fused into externally unreadable LUTs, the matcher can
no longer *prove* the arms are complementary buffer/inverter functions,
and the replacement hypothesis space grows with the LUT contents — the
locator reports the structure as unresolvable and the attack degrades
to the plain (invalid) SAT attack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..netlist.circuit import Circuit, Gate
from ..sim.cyclesim import evaluate_combinational
from .oracle import CombinationalOracle
from .sat_attack import SatAttackResult, sat_attack, verify_key_against_oracle

__all__ = ["LocatedGk", "EnhancedRemovalResult", "locate_gk_structures",
           "enhanced_removal_attack"]


@dataclass(frozen=True)
class LocatedGk:
    """One structure the locator identified as a GK."""

    mux_gate: str
    key_net: str
    x_net: str
    xor_arm: str
    xnor_arm: str
    chain_gates: Tuple[str, ...]


@dataclass
class EnhancedRemovalResult:
    located: List[LocatedGk] = field(default_factory=list)
    unresolvable_muxes: List[str] = field(default_factory=list)  # withheld arms
    remodeled: Optional[Circuit] = None
    sat_result: Optional[SatAttackResult] = None
    recovered_behaviour: Dict[str, str] = field(default_factory=dict)
    key_accuracy: Optional[float] = None

    @property
    def success(self) -> bool:
        return (
            self.sat_result is not None
            and self.sat_result.completed
            and (self.key_accuracy or 0.0) == 1.0
            and bool(self.located)
        )


def _trace_through_buffers(circuit: Circuit, net: str) -> Tuple[str, Tuple[str, ...]]:
    """Walk back through BUF gates; returns (source net, buffer gates)."""
    gates: List[str] = []
    current = net
    while True:
        driver = circuit.driver_of(current)
        if driver is None or driver.function != "BUF":
            return current, tuple(gates)
        gates.append(driver.name)
        current = driver.pins["A"]


def locate_gk_structures(circuit: Circuit) -> Tuple[List[LocatedGk], List[str]]:
    """Structural GK search over a (sequential or comb-view) netlist.

    Returns ``(located, unresolvable)``: confirmed GK structures, plus
    MUX gates that *look* like GKs but whose arms are opaque LUTs
    (withheld designs) so the buffer/inverter model cannot be proven.
    """
    located: List[LocatedGk] = []
    unresolvable: List[str] = []
    for mux in sorted(circuit.gates.values(), key=lambda g: g.name):
        if mux.function != "MUX2":
            continue
        select = mux.pins["S"]
        arm_a_src, chain_a = _trace_through_buffers(circuit, mux.pins["A"])
        arm_b_src, chain_b = _trace_through_buffers(circuit, mux.pins["B"])
        gate_a = circuit.driver_of(arm_a_src)
        gate_b = circuit.driver_of(arm_b_src)
        if gate_a is None or gate_b is None:
            continue
        pair = {gate_a.function, gate_b.function}
        if pair == {"XOR2", "XNOR2"}:
            operands_a = set(gate_a.input_nets())
            operands_b = set(gate_b.input_nets())
            if operands_a != operands_b or select not in operands_a:
                continue
            (x_net,) = operands_a - {select}
            xor_arm = gate_a if gate_a.function == "XOR2" else gate_b
            xnor_arm = gate_b if gate_a.function == "XOR2" else gate_a
            located.append(
                LocatedGk(
                    mux_gate=mux.name,
                    key_net=select,
                    x_net=x_net,
                    xor_arm=xor_arm.name,
                    xnor_arm=xnor_arm.name,
                    chain_gates=chain_a + chain_b,
                )
            )
        elif "LUT" in pair and (gate_a.function == "LUT" or gate_b.function == "LUT"):
            # Candidate GK with withheld arms: the select feeds both
            # LUTs, but the table contents are externally inaccessible,
            # so the complementary-arm property cannot be established.
            reads_select = all(
                select in g.input_nets() for g in (gate_a, gate_b)
            )
            if reads_select:
                unresolvable.append(mux.name)
    return located, unresolvable


def enhanced_removal_attack(
    locked_netlist: Circuit,
    oracle: CombinationalOracle,
    max_iterations: int = 256,
    verify_samples: int = 64,
    rng: Optional[random.Random] = None,
) -> EnhancedRemovalResult:
    """Run the Sec. V-D combined attack against a GK-locked netlist.

    *locked_netlist* is the attacker's view — typically
    :func:`repro.core.flow.expose_gk_keys` output (KEYGENs stripped, GK
    key wires as key inputs), which is also what the plain SAT attack
    consumes.
    """
    rng = rng or random.Random(0)
    result = EnhancedRemovalResult()
    located, unresolvable = locate_gk_structures(locked_netlist)
    result.located = located
    result.unresolvable_muxes = unresolvable
    if not located:
        return result

    remodeled = locked_netlist.clone(f"{locked_netlist.name}__remodel")
    hypothesis_keys: Dict[str, str] = {}  # key net -> mux gate
    for i, gk in enumerate(located):
        mux = remodeled.gates[gk.mux_gate]
        output = mux.output
        # Drop the GK: MUX, arms, and delay chains.
        remodeled.remove_gate(gk.mux_gate)
        for name in (gk.xor_arm, gk.xnor_arm) + gk.chain_gates:
            if name in remodeled.gates:
                remodeled.remove_gate(name)
        # Replace with MUX(x, x', hypothesis-key).
        hyp = remodeled.add_key_input(f"hyp{i}")
        hypothesis_keys[hyp] = gk.mux_gate
        inv_net = remodeled.new_net("hypinv")
        remodeled.add_gate(
            remodeled.new_gate_name("hypinv"),
            remodeled.library.cheapest("INV").name,
            {"A": gk.x_net},
            inv_net,
        )
        remodeled.add_gate(
            remodeled.new_gate_name("hypmux"),
            remodeled.library.cheapest("MUX2").name,
            {"A": gk.x_net, "B": inv_net, "S": hyp},
            output,
        )
        # The original GK key wire is now unread; drop it if floating.
        if gk.key_net in remodeled.key_inputs and not remodeled.fanout_pins(gk.key_net):
            remodeled.key_inputs.remove(gk.key_net)
            remodeled.release_driver(gk.key_net)
    remodeled.validate()
    result.remodeled = remodeled

    result.sat_result = sat_attack(remodeled, oracle, max_iterations=max_iterations)
    if result.sat_result.completed and result.sat_result.key is not None:
        result.key_accuracy = verify_key_against_oracle(
            remodeled, oracle, result.sat_result.key, samples=verify_samples, rng=rng
        )
        for hyp, mux_name in hypothesis_keys.items():
            bit = result.sat_result.key.get(hyp)
            result.recovered_behaviour[mux_name] = (
                "inverter" if bit else "buffer"
            )
    return result
