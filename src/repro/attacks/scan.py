"""Scan-chain infrastructure and the scan-based attack on GKs.

Sec. VI notes a GK weakness: "scan-chain can be designed to test the
paths between FFs ... the GK that works solely to encrypt the input of
FF at the end of the path can provide only limited security."  With
scan access an attacker can *measure*, per flip-flop, whether the
captured value matches the glitch-blind combinational netlist or its
complement — directly reading off each GK's effective buffer/inverter
behaviour.  The paper's fix is hybrid GK+XOR encryption: once unknown
XOR key bits sit in the same fan-in cone, the measured parity confounds
the GK bit with the XOR key bits and the per-path equation becomes
underdetermined.

Two parts:

* :func:`insert_scan_chain` — real DFF -> scan-DFF conversion with a
  stitched SI/SE chain (the substrate making the threat concrete);
* :func:`scan_attack` — launch-on-capture measurement against the
  activated chip (timing oracle), resolving each GK'd flip-flop's
  inversion parity where no other key material blocks it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..locking.base import LockedCircuit
from ..netlist.circuit import Circuit
from ..netlist.transform import extract_combinational
from ..sim.cyclesim import evaluate_combinational
from ..sim.harness import simulate_sequential
from .oracle import TimingOracle

__all__ = ["ScanChain", "insert_scan_chain", "ScanAttackResult", "scan_attack"]


@dataclass(frozen=True)
class ScanChain:
    """Result of scan insertion."""

    circuit: Circuit
    order: Tuple[str, ...]  # FF names, scan_in first
    scan_in: str
    scan_enable: str
    scan_out: str


def insert_scan_chain(circuit: Circuit) -> ScanChain:
    """Convert every DFF to a scan DFF and stitch the chain.

    Returns a new circuit with ``scan_in`` / ``scan_en`` inputs and a
    ``scan_out`` output; chain order is FF-name order.
    """
    scanned = circuit.clone(f"{circuit.name}__scan")
    ffs = sorted(g.name for g in scanned.flip_flops())
    if not ffs:
        raise ValueError("no flip-flops to scan")
    scan_in = scanned.add_input("scan_in")
    scan_en = scanned.add_input("scan_en")
    sdff = scanned.library.cheapest("SDFF")
    previous = scan_in
    for name in ffs:
        gate = scanned.remove_gate(name)
        scanned.add_gate(
            name,
            sdff.name,
            {
                "D": gate.pins["D"],
                "SI": previous,
                "SE": scan_en,
                "CLK": gate.pins["CLK"],
            },
            gate.output,
        )
        previous = gate.output
    scanned.add_output(previous)  # scan_out = last FF's Q
    scanned.validate()
    return ScanChain(
        circuit=scanned,
        order=tuple(ffs),
        scan_in=scan_in,
        scan_enable=scan_en,
        scan_out=previous,
    )


@dataclass
class ScanAttackResult:
    """Per-GK'd-FF measurement outcome."""

    #: FF -> True if the chip's capture is the complement of the
    #: glitch-blind netlist's prediction (i.e. the GK's real behaviour
    #: is the opposite of its combinational appearance)
    inverted_vs_model: Dict[str, bool] = field(default_factory=dict)
    #: FFs whose cone contains other unknown key bits (hybrid defense):
    #: the parity equation is confounded and the GK bit is unresolved
    ambiguous: List[str] = field(default_factory=list)
    trials: int = 0

    @property
    def resolved(self) -> int:
        return len(self.inverted_vs_model)

    @property
    def success(self) -> bool:
        return not self.ambiguous and self.resolved > 0


def _cone_key_bits(comb: Circuit, net: str) -> Set[str]:
    """Key inputs in the transitive fan-in of *net*."""
    keys = set(comb.key_inputs)
    found: Set[str] = set()
    seen: Set[str] = set()
    stack = [net]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        if current in keys:
            found.add(current)
            continue
        driver = comb.driver_of(current)
        if driver is not None:
            stack.extend(driver.pins.values())
    return found


def scan_attack(
    locked: LockedCircuit,
    attacker_view: Circuit,
    clock_period: float,
    gk_ffs: Dict[str, str],
    trials: int = 6,
    cycles: int = 8,
    rng: Optional[random.Random] = None,
) -> ScanAttackResult:
    """Measure each GK'd FF's inversion parity through scan tests.

    Args:
        locked: The activated chip (correct key known to the chip only).
        attacker_view: The attacker's netlist —
            :func:`~repro.core.flow.expose_gk_keys` output.  Its GK key
            bits are combinationally non-influential; any *other* key
            bits (hybrid XOR) in a measured cone block resolution.
        gk_ffs: FF name -> the GK key net guarding it.
    """
    rng = rng or random.Random(0)
    result = ScanAttackResult(trials=trials)
    oracle = TimingOracle(locked, clock_period)
    extraction = extract_combinational(attacker_view)
    comb = extraction.circuit
    gk_key_nets = set(gk_ffs.values())

    # Cones with non-GK key material are confounded (Sec. VI's hybrid).
    measurable: Dict[str, str] = {}
    for ff, key_net in sorted(gk_ffs.items()):
        data_net = extraction.pseudo_outputs[ff]
        blockers = _cone_key_bits(comb, data_net) - gk_key_nets
        if blockers:
            result.ambiguous.append(ff)
        else:
            measurable[ff] = data_net

    if not measurable:
        return result

    parities: Dict[str, Set[bool]] = {ff: set() for ff in measurable}
    for _ in range(trials):
        sequence = [
            {net: rng.randint(0, 1) for net in locked.circuit.inputs}
            for _ in range(cycles)
        ]
        trace = oracle.run(sequence)
        # Predict each capture from the glitch-blind model, using the
        # chip's own observed previous state (scan-out gives it to the
        # attacker).
        for k in range(1, cycles):
            state = {
                ff: trace.states[k].get(ff) for ff in extraction.pseudo_inputs
            }
            if any(v is None for v in state.values()):
                continue
            assignment = dict(sequence[k])
            for net in comb.key_inputs:
                assignment[net] = 0  # GK bits: non-influential anyway
            for ff, q_net in extraction.pseudo_inputs.items():
                assignment[q_net] = state[ff]
            values = evaluate_combinational(comb, assignment)
            for ff, data_net in measurable.items():
                predicted = values[data_net]
                captured = trace.states[k + 1].get(ff)
                if predicted is None or captured not in (0, 1):
                    continue
                parities[ff].add(bool(predicted != captured))
    for ff, observed in parities.items():
        if len(observed) == 1:
            result.inverted_vs_model[ff] = observed.pop()
        else:
            result.ambiguous.append(ff)
    return result
