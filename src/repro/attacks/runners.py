"""Registered runners: the seven attack families, one signature each.

Every runner takes an :class:`~repro.attacks.registry.AttackContext`
and returns an :class:`~repro.attacks.outcome.AttackOutcome`: this is
where each family's idiosyncratic result dataclass is normalized, next
to the call that produced it.  Importing this module fills the attack
registry (it is the registry's provider module).

Conventions shared by all runners:

* the attacker netlist is ``context.target()`` — the exposed Boolean
  key view for GK-family schemes, the locked netlist otherwise;
* ``key_correct`` / ``corruption`` come from
  :func:`~repro.attacks.outcome.score_recovery`, i.e. designer-side
  equivalence against the original (for GK designs this is the
  Boolean-domain check: glitch-blindness makes it pass for any key,
  which the leaderboard deliberately shows);
* oracle queries count per query object (``query_count``); oracle-free
  attacks report the validation queries they chose to spend.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from ..netlist.transform import extract_combinational
from .oracle import CombinationalOracle
from .outcome import AttackOutcome, score_recovery
from .registry import AttackContext, register_attack

__all__: list = []


def _comb_view(circuit):
    if circuit.flip_flops():
        return extract_combinational(circuit).circuit
    return circuit


def _portfolio_solver(context: AttackContext, attack: str, circuit,
                      oracle=None):
    """(solver, finish) per the context's ``portfolio`` params.

    ``portfolio=N`` (N >= 1) races N solver configurations per SAT
    query; 0 (the default) keeps the serial solver and returns
    ``(None, noop)``.  ``portfolio_deadline`` bounds each race in
    seconds.  With a context cache and an I/O *oracle*, the shared
    clause pool warm-starts from — and, via *finish(outcome)*, persists
    to — the content-addressed cache, keyed by netlist + attack family
    + oracle fingerprint (``portfolio_warm=False`` opts out).  *finish*
    also records the portfolio accounting in ``outcome.detail``.
    """
    n = int(context.param("portfolio", 0))
    if n <= 0:
        return None, lambda outcome: None
    from ..sat.portfolio import (
        PortfolioSolver, load_shared_clauses, oracle_fingerprint,
        shared_clause_key, store_shared_clauses,
    )

    deadline = context.params.get("portfolio_deadline")
    solver = PortfolioSolver(
        n=n,
        base_seed=context.seed,
        deadline=float(deadline) if deadline is not None else None,
    )
    key = None
    if (
        context.cache is not None
        and oracle is not None
        and context.param("portfolio_warm", True)
    ):
        key = shared_clause_key(
            circuit, attack, oracle_fingerprint(oracle)
        )
        solver.seed_shared_clauses(
            load_shared_clauses(context.cache, key)
        )

    def finish(outcome: AttackOutcome) -> None:
        outcome.detail["portfolio"] = solver.stats.to_dict()
        if key is not None:
            store_shared_clauses(
                context.cache, key, solver.persistable_clauses()
            )

    return solver, finish


@register_attack(
    "sat",
    description="the SAT (DIP-loop) attack of Subramanyan et al.",
    tags=("oracle:io",),
)
def _run_sat(context: AttackContext) -> AttackOutcome:
    from .sat_attack import sat_attack

    target = context.target()
    oracle = CombinationalOracle(context.locked.original)
    solver, finish = _portfolio_solver(context, "sat", target, oracle)
    start = time.perf_counter()
    result = sat_attack(
        target, oracle,
        max_iterations=context.param("max_iterations", 128),
        solver=solver,
    )
    wall = time.perf_counter() - start
    key_correct, corruption = score_recovery(
        context.locked.original, target, result.key, rng=context.rng(0xEC)
    )
    outcome = AttackOutcome(
        attack="sat",
        completed=result.completed,
        success=bool(result.completed and key_correct),
        key=result.key,
        key_correct=key_correct,
        oracle_queries=oracle.query_count,
        wall_time=wall,
        corruption=corruption,
        detail={
            "iterations": result.iterations,
            "unsat_at_first_iteration": result.unsat_at_first_iteration,
        },
    )
    finish(outcome)
    return outcome


@register_attack(
    "appsat",
    description="AppSAT approximate deobfuscation (Shamsi et al.)",
    tags=("oracle:io", "approximate"),
)
def _run_appsat(context: AttackContext) -> AttackOutcome:
    from .appsat import appsat_attack

    target = context.target()
    oracle = CombinationalOracle(context.locked.original)
    solver, finish = _portfolio_solver(context, "appsat", target, oracle)
    start = time.perf_counter()
    result = appsat_attack(
        target, oracle,
        rng=context.rng(1),
        dips_per_round=context.param("dips_per_round", 2),
        queries_per_round=context.param("queries_per_round", 24),
        error_threshold=context.param("error_threshold", 0.0),
        max_rounds=context.param("max_rounds", 16),
        solver=solver,
    )
    wall = time.perf_counter() - start
    key_correct, corruption = score_recovery(
        context.locked.original, target, result.key, rng=context.rng(0xEC)
    )
    outcome = AttackOutcome(
        attack="appsat",
        completed=result.settled,
        success=result.approximately_correct,
        key=result.key,
        key_correct=key_correct,
        oracle_queries=oracle.query_count,
        wall_time=wall,
        corruption=corruption,
        detail={
            "dip_iterations": result.dip_iterations,
            "random_queries": result.random_queries,
            "estimated_error": result.estimated_error,
        },
    )
    finish(outcome)
    return outcome


@register_attack(
    "removal",
    description="signal-skew removal of point-function blocks",
    tags=("oracle-free",),
)
def _run_removal(context: AttackContext) -> AttackOutcome:
    from .removal import removal_attack

    oracle = CombinationalOracle(context.locked.original)
    start = time.perf_counter()
    result = removal_attack(
        context.locked,
        oracle=oracle,
        samples=context.param("samples", 300),
        rng=context.rng(2),
    )
    wall = time.perf_counter() - start
    corruption = None
    if result.restored_accuracy is not None:
        corruption = 1.0 - result.restored_accuracy
    return AttackOutcome(
        attack="removal",
        completed=True,
        success=result.success,
        key=None,
        key_correct=None,
        oracle_queries=oracle.query_count,
        wall_time=wall,
        corruption=corruption,
        detail={
            "located": len(result.located),
            "removed_nets": len(result.removed_nets),
            "gates_swept": result.gates_swept,
        },
    )


@register_attack(
    "enhanced_removal",
    description="Sec. V-D structural GK removal + SAT on the rest",
    tags=("oracle:io", "gk-specific"),
)
def _run_enhanced_removal(context: AttackContext) -> AttackOutcome:
    from .enhanced_removal import enhanced_removal_attack

    target = context.target()
    oracle = CombinationalOracle(context.locked.original)
    start = time.perf_counter()
    result = enhanced_removal_attack(
        target, oracle,
        max_iterations=context.param("max_iterations", 128),
        verify_samples=context.param("verify_samples", 64),
        rng=context.rng(3),
    )
    wall = time.perf_counter() - start
    sat = result.sat_result
    key = sat.key if sat is not None else None
    key_correct = corruption = None
    if result.remodeled is not None:
        key_correct, corruption = score_recovery(
            context.locked.original, result.remodeled, key,
            rng=context.rng(0xEC),
        )
    return AttackOutcome(
        attack="enhanced_removal",
        completed=sat is not None and sat.completed,
        success=result.success,
        key=key,
        key_correct=key_correct,
        oracle_queries=oracle.query_count,
        wall_time=wall,
        corruption=corruption,
        detail={
            "located": len(result.located),
            "unresolvable_muxes": len(result.unresolvable_muxes),
            "key_accuracy": result.key_accuracy,
        },
    )


@register_attack(
    "tcf",
    description="timed SAT attack over two-vector tests (TCF encoding)",
    tags=("oracle:timing", "combinational-only"),
)
def _run_tcf(context: AttackContext) -> AttackOutcome:
    from .tcf import SimulatedTwoVectorOracle, tcf_attack

    target = _comb_view(context.target())
    # The activated chip on the tester: the locked netlist itself under
    # the correct key (scan access supplies state controllability for
    # sequential designs — the same reduction the attacker ran).
    chip = _comb_view(context.locked.circuit)
    default_sample = context.clock.period if context.clock else 2.0
    sample_time = context.param("sample_time", float(default_sample))
    oracle = SimulatedTwoVectorOracle(chip, context.locked.key)
    # Two-vector oracles have no batch I/O interface to fingerprint, so
    # tcf races without cross-run warm starts (oracle=None).
    solver, finish = _portfolio_solver(context, "tcf", target)
    start = time.perf_counter()
    result = tcf_attack(
        target,
        oracle=oracle,
        sample_time=sample_time,
        dt=context.param("dt", 0.25),
        max_iterations=context.param("max_iterations", 32),
        solver=solver,
    )
    wall = time.perf_counter() - start
    key_correct, corruption = score_recovery(
        context.locked.original, target, result.key, rng=context.rng(0xEC)
    )
    outcome = AttackOutcome(
        attack="tcf",
        completed=result.completed,
        success=bool(result.completed and key_correct),
        key=result.key,
        key_correct=key_correct,
        oracle_queries=oracle.query_count,
        wall_time=wall,
        corruption=corruption,
        detail={
            "iterations": result.iterations,
            "unsat_at_first_iteration": result.unsat_at_first_iteration,
            "sample_time": sample_time,
        },
    )
    finish(outcome)
    return outcome


@register_attack(
    "scan",
    description="launch-on-capture scan measurement of GK parities",
    tags=("oracle:timing", "gk-specific", "needs-clock"),
)
def _run_scan(context: AttackContext) -> AttackOutcome:
    from .scan import scan_attack

    if context.clock is None:
        raise ValueError("scan attack needs the design clock")
    locked = context.locked
    exposed = context.target()
    gk_ffs = {
        record.gk.ff: record.keygen.key_out
        for record in locked.metadata["gks"]
    }
    start = time.perf_counter()
    result = scan_attack(
        locked, exposed, context.clock.period, gk_ffs,
        trials=context.param("trials", 4),
        cycles=context.param("cycles", 6),
        rng=context.rng(4),
    )
    wall = time.perf_counter() - start
    # The attacker's key guess: parity -> exposed GK key bit.  Partial
    # resolutions (hybrid confounding) leave key bits unpinned, which
    # score_recovery reports as unscorable rather than wrong.
    key = {
        gk_ffs[ff]: int(inverted)
        for ff, inverted in result.inverted_vs_model.items()
    } or None
    key_correct, corruption = score_recovery(
        locked.original, exposed, key, rng=context.rng(0xEC)
    )
    return AttackOutcome(
        attack="scan",
        completed=True,
        success=result.success,
        key=key,
        key_correct=key_correct,
        oracle_queries=result.trials,
        wall_time=wall,
        corruption=corruption,
        detail={
            "resolved": result.resolved,
            "ambiguous": len(result.ambiguous),
        },
    )


@register_attack(
    "sequential",
    description="T-frame unrolling SAT attack (no scan access)",
    tags=("oracle:sequence", "sequential-only"),
)
def _run_sequential(context: AttackContext) -> AttackOutcome:
    from .unroll import sequential_sat_attack

    target = context.target()
    start = time.perf_counter()
    result = sequential_sat_attack(
        target, context.locked.original,
        frames=context.param("frames", 3),
        max_iterations=context.param("max_iterations", 32),
    )
    wall = time.perf_counter() - start
    key_correct, corruption = score_recovery(
        context.locked.original, target, result.key, rng=context.rng(0xEC)
    )
    return AttackOutcome(
        attack="sequential",
        completed=result.completed,
        success=bool(result.completed and key_correct),
        key=result.key,
        key_correct=key_correct,
        oracle_queries=result.iterations,
        wall_time=wall,
        corruption=corruption,
        detail={
            "iterations": result.iterations,
            "unsat_at_first_iteration": result.unsat_at_first_iteration,
        },
    )
