"""Attack oracles: models of the "functionally correct chip".

The SAT attack model [11] assumes the attacker holds (1) the locked
netlist and (2) an *activated* chip — a black box answering input/output
queries.  Two oracle flavours:

* :class:`CombinationalOracle` — the standard scan-enabled view: the
  chip's combinational core queried directly (pseudo-PIs = FF outputs,
  pseudo-POs = FF inputs).  Backed by the original netlist's
  zero-delay evaluation, since the activated chip computes the original
  function.
* :class:`TimingOracle` — the chip at speed: event-driven simulation of
  the *locked* netlist under the correct key.  This is what a
  scan-based launch/capture test (Sec. VI's BIST discussion) actually
  observes, glitches included.

:class:`OracleProtocol` is the structural contract every combinational
oracle satisfies — the attacks (SAT, AppSAT, key verification) are
typed against it, so any implementation plugs in: the in-process
:class:`CombinationalOracle`, the served
:class:`~repro.serve.client.RemoteOracle`, or a test stub.
:class:`TwoVectorOracleProtocol` is the analogous seam for the *timed*
attack surface (TCF's launch/capture measurements).

Both concrete oracles resolve their compiled circuit through the
process-wide serving registry
(:func:`repro.serve.registry.default_registry`) **once, at
construction**, and hold the instance — the same
lookup-then-hold story the oracle server uses, and the correct
semantics for an activated chip: it does not change because the Python
``Circuit`` object it was built from is later mutated.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

try:  # typing.Protocol is 3.8+; keep the guard cheap and explicit
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 fallback, never hit in CI
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from ..locking.base import LockedCircuit
from ..netlist.circuit import Circuit, NetlistError
from ..netlist.transform import extract_combinational
from ..sim.harness import SequentialTrace, simulate_sequential
from ..sim.logic import LogicValue

__all__ = [
    "OracleProtocol",
    "TwoVectorOracleProtocol",
    "CombinationalOracle",
    "TimingOracle",
    "random_pattern",
]


@runtime_checkable
class OracleProtocol(Protocol):
    """What the oracle-guided attacks require of an activated chip.

    ``query_count`` counts one per *pattern* regardless of batching —
    batching is an evaluation optimization, not a cheaper attack model —
    so query totals are comparable across implementations.
    """

    inputs: List[str]
    outputs: List[str]
    query_count: int

    def query(
        self, assignment: Mapping[str, LogicValue]
    ) -> Dict[str, LogicValue]:
        """Outputs of the activated chip for one input pattern."""
        ...

    def query_batch(
        self, assignments: Sequence[Mapping[str, LogicValue]]
    ) -> List[Dict[str, LogicValue]]:
        """Outputs for many patterns (counts one query per pattern)."""
        ...


@runtime_checkable
class TwoVectorOracleProtocol(Protocol):
    """The at-speed tester interface the timed (TCF) attack queries."""

    query_count: int

    def two_vector(
        self,
        v1: Mapping[str, int],
        v2: Mapping[str, int],
        sample_time: float,
    ) -> Dict[str, Optional[int]]:
        """Sampled primary outputs of one launch/capture test."""
        ...


def random_pattern(nets: Sequence[str], rng: random.Random) -> Dict[str, int]:
    return {net: rng.randint(0, 1) for net in nets}


def _registry_compiled(circuit: Circuit):
    """Compiled instance via the serving registry (one memo story).

    Imported lazily: ``repro.serve`` imports this module for the
    protocol, so a module-level import would be circular.  At call time
    (oracle construction) both packages are fully initialized.
    """
    from ..serve.registry import default_registry

    return default_registry().compiled_for(circuit)


class CombinationalOracle:
    """I/O oracle over the combinational core of the original design."""

    def __init__(self, original: Circuit) -> None:
        if original.key_inputs:
            raise NetlistError("the oracle wraps the *original* (keyless) design")
        if original.flip_flops():
            original = extract_combinational(original).circuit
        self.circuit = original
        self._compiled = _registry_compiled(original)
        self.inputs: List[str] = list(original.inputs)
        self.outputs: List[str] = list(original.outputs)
        self.query_count = 0

    def query(self, assignment: Mapping[str, LogicValue]) -> Dict[str, LogicValue]:
        """Outputs of the activated chip for one input pattern."""
        self.query_count += 1
        return self._compiled.query_outputs([assignment])[0]

    def query_batch(
        self, assignments: Sequence[Mapping[str, LogicValue]]
    ) -> List[Dict[str, LogicValue]]:
        """Outputs for many patterns: one bit-parallel pass per lane width.

        Counts one oracle query per pattern — batching is an evaluation
        optimization, not a cheaper attack model.
        """
        self.query_count += len(assignments)
        return self._compiled.query_outputs(assignments)


class TimingOracle:
    """The activated chip observed at speed (glitches and all)."""

    def __init__(
        self,
        locked: LockedCircuit,
        clock_period: float,
        delay_mode: str = "transport",
    ) -> None:
        self.locked = locked
        self.clock_period = clock_period
        self.delay_mode = delay_mode
        # Same memoization story as CombinationalOracle: the compiled
        # instance the event simulator's settle pass needs is resolved
        # through the registry up front, not re-derived per run.
        self._compiled = _registry_compiled(locked.circuit)
        self.run_count = 0

    def run(
        self, input_sequence: Sequence[Mapping[str, LogicValue]]
    ) -> SequentialTrace:
        """Drive the chip for ``len(input_sequence)`` cycles."""
        self.run_count += 1
        return simulate_sequential(
            self.locked.circuit,
            self.clock_period,
            input_sequence,
            key=self.locked.key,
            delay_mode=self.delay_mode,
        )
