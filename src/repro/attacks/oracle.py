"""Attack oracles: models of the "functionally correct chip".

The SAT attack model [11] assumes the attacker holds (1) the locked
netlist and (2) an *activated* chip — a black box answering input/output
queries.  Two oracle flavours:

* :class:`CombinationalOracle` — the standard scan-enabled view: the
  chip's combinational core queried directly (pseudo-PIs = FF outputs,
  pseudo-POs = FF inputs).  Backed by the original netlist's
  zero-delay evaluation, since the activated chip computes the original
  function.
* :class:`TimingOracle` — the chip at speed: event-driven simulation of
  the *locked* netlist under the correct key.  This is what a
  scan-based launch/capture test (Sec. VI's BIST discussion) actually
  observes, glitches included.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from ..locking.base import LockedCircuit
from ..netlist.circuit import Circuit, NetlistError
from ..netlist.compiled import compile_circuit
from ..netlist.transform import extract_combinational
from ..sim.harness import SequentialTrace, simulate_sequential
from ..sim.logic import LogicValue

__all__ = ["CombinationalOracle", "TimingOracle", "random_pattern"]


def random_pattern(nets: Sequence[str], rng: random.Random) -> Dict[str, int]:
    return {net: rng.randint(0, 1) for net in nets}


class CombinationalOracle:
    """I/O oracle over the combinational core of the original design."""

    def __init__(self, original: Circuit) -> None:
        if original.key_inputs:
            raise NetlistError("the oracle wraps the *original* (keyless) design")
        if original.flip_flops():
            original = extract_combinational(original).circuit
        self.circuit = original
        self.inputs: List[str] = list(original.inputs)
        self.outputs: List[str] = list(original.outputs)
        self.query_count = 0

    def query(self, assignment: Mapping[str, LogicValue]) -> Dict[str, LogicValue]:
        """Outputs of the activated chip for one input pattern."""
        self.query_count += 1
        return compile_circuit(self.circuit).query_outputs([assignment])[0]

    def query_batch(
        self, assignments: Sequence[Mapping[str, LogicValue]]
    ) -> List[Dict[str, LogicValue]]:
        """Outputs for many patterns: one bit-parallel pass per 64.

        Counts one oracle query per pattern — batching is an evaluation
        optimization, not a cheaper attack model.
        """
        self.query_count += len(assignments)
        return compile_circuit(self.circuit).query_outputs(assignments)


class TimingOracle:
    """The activated chip observed at speed (glitches and all)."""

    def __init__(
        self,
        locked: LockedCircuit,
        clock_period: float,
        delay_mode: str = "transport",
    ) -> None:
        self.locked = locked
        self.clock_period = clock_period
        self.delay_mode = delay_mode
        self.run_count = 0

    def run(
        self, input_sequence: Sequence[Mapping[str, LogicValue]]
    ) -> SequentialTrace:
        """Drive the chip for ``len(input_sequence)`` cycles."""
        self.run_count += 1
        return simulate_sequential(
            self.locked.circuit,
            self.clock_period,
            input_sequence,
            key=self.locked.key,
            delay_mode=self.delay_mode,
        )
