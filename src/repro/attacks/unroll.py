"""Sequential SAT attack by time-frame unrolling.

The classic SAT attack assumes scan access (pseudo-PI/PO visibility).
When scan is locked or absent, the attacker can still unroll the
sequential circuit over T time frames — chaining each frame's flip-flop
inputs to the next frame's flip-flop outputs, with the reset state
pinned — and search for a *distinguishing input sequence*: per-frame
primary inputs making two key candidates disagree at some primary
output in some frame.  This is the model-checking-flavoured attack
family the logic-locking literature developed after [11] (e.g. KC2),
and the natural "what about sequential attacks?" question the paper
leaves open.

The reproduction's answer: unrolling does not help against GKs.  The GK
key bits are combinationally non-influential in *every* time frame, so
the unrolled miter is exactly as UNSAT as the combinational one — while
sequential XOR locking falls to this attack without any scan access.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.transform import extract_combinational
from ..sat.cnf import CNF
from ..sat.solver import Solver
from ..sat.tseitin import CircuitEncoder
from ..sim.cyclesim import CycleSimulator

__all__ = ["UnrolledCopy", "SequentialAttackResult", "sequential_sat_attack"]


@dataclass
class UnrolledCopy:
    """Variable map of one T-frame unrolled copy of a locked design."""

    frames: int
    key_vars: Dict[str, int]
    #: pi_vars[t][net] — per-frame primary input variables
    pi_vars: List[Dict[str, int]]
    #: po_vars[t][net] — per-frame primary output variables
    po_vars: List[Dict[str, int]]


def _unroll(
    cnf: CNF,
    comb: Circuit,
    pseudo_in: Mapping[str, str],
    pseudo_out: Mapping[str, str],
    original_pos: Sequence[str],
    frames: int,
    shared_pis: Optional[List[Dict[str, int]]] = None,
    shared_keys: Optional[Mapping[str, int]] = None,
) -> UnrolledCopy:
    """Encode *frames* chained copies of the combinational core."""
    keys: Dict[str, int] = dict(shared_keys or {})
    for net in comb.key_inputs:
        if net not in keys:
            keys[net] = cnf.new_var()

    pi_vars: List[Dict[str, int]] = []
    po_vars: List[Dict[str, int]] = []
    state_vars: Dict[str, int] = {}  # ff name -> var of current Q value
    for ff in pseudo_in:
        var = cnf.new_var()
        state_vars[ff] = var
        cnf.add_clause([-var])  # reset state: all flip-flops at 0

    real_pis = [n for n in comb.inputs if n not in set(pseudo_in.values())]
    for t in range(frames):
        net_vars: Dict[str, int] = dict(keys)
        for ff, q_net in pseudo_in.items():
            net_vars[q_net] = state_vars[ff]
        if shared_pis is not None:
            for net in real_pis:
                net_vars[net] = shared_pis[t][net]
        encoder = CircuitEncoder(cnf, comb, net_vars=net_vars)
        pi_vars.append({net: encoder.var_of[net] for net in real_pis})
        po_vars.append({net: encoder.var_of[net] for net in original_pos})
        state_vars = {
            ff: encoder.var_of[d_net] for ff, d_net in pseudo_out.items()
        }
    return UnrolledCopy(
        frames=frames, key_vars=keys, pi_vars=pi_vars, po_vars=po_vars
    )


@dataclass
class SequentialAttackResult:
    """Outcome of the unrolling attack."""

    completed: bool = False
    iterations: int = 0
    unsat_at_first_iteration: bool = False
    key: Optional[Dict[str, int]] = None
    distinguishing_sequences: List[List[Dict[str, int]]] = field(
        default_factory=list
    )


def sequential_sat_attack(
    locked_sequential: Circuit,
    original: Circuit,
    frames: int = 4,
    max_iterations: int = 64,
) -> SequentialAttackResult:
    """Run the T-frame unrolling attack (no scan access assumed).

    *original* plays the activated chip: it answers each distinguishing
    input sequence with the reference PO trace from reset.
    """
    if not locked_sequential.flip_flops():
        raise NetlistError("sequential attack needs a sequential netlist")
    if not locked_sequential.key_inputs:
        raise NetlistError("netlist has no key inputs; nothing to attack")
    extraction = extract_combinational(locked_sequential)
    comb = extraction.circuit
    original_pos = list(locked_sequential.outputs)
    oracle_pos = list(original.outputs)

    solver = Solver()

    def add_copy(shared_pis=None, shared_keys=None) -> UnrolledCopy:
        cnf = CNF(num_vars=solver.num_vars)
        copy = _unroll(
            cnf, comb, extraction.pseudo_inputs, extraction.pseudo_outputs,
            original_pos, frames, shared_pis=shared_pis,
            shared_keys=shared_keys,
        )
        solver.add_cnf(cnf)
        return copy

    copy1 = add_copy()
    copy2 = add_copy(shared_pis=copy1.pi_vars)

    miter = CNF(num_vars=solver.num_vars)
    xor_vars = []
    for t in range(frames):
        for net in original_pos:
            x = miter.new_var()
            miter.add_xor(x, copy1.po_vars[t][net], copy2.po_vars[t][net])
            xor_vars.append(x)
    diff = miter.new_var()
    miter.add_or(diff, xor_vars)
    solver.add_cnf(miter)

    result = SequentialAttackResult()
    for _ in range(max_iterations):
        if not solver.solve([diff]):
            result.completed = True
            break
        model = solver.model()
        sequence = [
            {net: int(model[var]) for net, var in copy1.pi_vars[t].items()}
            for t in range(frames)
        ]
        result.distinguishing_sequences.append(sequence)
        result.iterations += 1

        # Query the activated chip from reset with this sequence.
        reference = CycleSimulator(original, reset_value=0)
        responses = reference.run(sequence)

        # Pin both key copies to reproduce the observed PO trace.
        for copy in (copy1, copy2):
            cnf = CNF(num_vars=solver.num_vars)
            pinned = _unroll(
                cnf, comb, extraction.pseudo_inputs,
                extraction.pseudo_outputs, original_pos, frames,
                shared_keys=copy.key_vars,
            )
            for t in range(frames):
                for net, value in sequence[t].items():
                    var = pinned.pi_vars[t][net]
                    cnf.add_clause([var if value else -var])
                for net_l, net_o in zip(original_pos, oracle_pos):
                    value = responses[t][net_o]
                    var = pinned.po_vars[t][net_l]
                    cnf.add_clause([var if value else -var])
            solver.add_cnf(cnf)

    result.unsat_at_first_iteration = (
        result.completed and result.iterations == 0
    )
    if result.completed and solver.solve([]):
        model = solver.model()
        result.key = {
            net: int(model[var]) for net, var in copy1.key_vars.items()
        }
    return result
