"""The SAT attack on logic locking (Subramanyan et al. [11]).

The attack builds a miter of two copies of the locked netlist sharing
primary inputs but with independent keys, and asks a SAT solver for a
**distinguishing input pattern** (DIP): an input making the copies
disagree for some key pair.  Each DIP is resolved against the oracle
(the activated chip) and both copies are constrained to match the
observed response, pruning every key inconsistent with it.  When no DIP
remains, any key satisfying the accumulated constraints is functionally
correct — for ordinary locking.

Against the paper's GK-locked designs, the very first DIP query returns
UNSAT (the GK key inputs are combinationally non-influential), so the
attack "succeeds" immediately with an arbitrary key — and the function
it certifies is the *glitch-blind* one, which is wrong wherever a GK
transmits data on a glitch.  :func:`verify_key_against_oracle` makes
that failure observable, reproducing Sec. VI's result.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.transform import extract_combinational
from ..obs import metrics as _metrics
from ..obs.spans import trace_span
from ..sat.cnf import CNF
from ..sat.solver import Solver
from ..sat.tseitin import CircuitEncoder
from .oracle import OracleProtocol

__all__ = ["IterationStats", "SatAttackResult", "sat_attack",
           "verify_key_against_oracle"]


@dataclass(frozen=True)
class IterationStats:
    """Cumulative effort after one DIP iteration (1-based *index*).

    Counter fields are cumulative over the whole attack so far, so each
    sequence is monotonically non-decreasing across iterations — the
    property the oracle-guided-attack literature reports (queries,
    solver effort, clause growth per iteration) and the one our
    regression tests pin down.
    """

    index: int
    seconds: float  # wall time since the attack started
    solver_decisions: int
    solver_conflicts: int
    solver_propagations: int
    oracle_queries: int
    clauses: int  # problem clauses in the solver's database


@dataclass
class SatAttackResult:
    """Outcome of one SAT attack run."""

    completed: bool  # the DIP loop terminated (UNSAT) within budget
    key: Optional[Dict[str, int]]  # a key consistent with all DIPs
    iterations: int  # number of DIPs found
    unsat_at_first_iteration: bool  # the GK signature (Sec. VI)
    dips: List[Dict[str, int]] = field(default_factory=list)
    oracle_queries: int = 0
    solver_conflicts: int = 0
    solver_decisions: int = 0
    iteration_stats: List[IterationStats] = field(default_factory=list)

    @property
    def found_any_dip(self) -> bool:
        return self.iterations > 0


def _comb_view(locked_netlist: Circuit) -> Circuit:
    if locked_netlist.flip_flops():
        return extract_combinational(locked_netlist).circuit
    return locked_netlist


def _interface_map(comb: Circuit, oracle: OracleProtocol) -> Dict[str, str]:
    """Locked-netlist output net -> oracle output net.

    Locking may rename a flip-flop's D net (a GK splices its MUX in
    front of the FF), but both combinational extractions list outputs in
    the same order: original POs first, then pseudo-POs sorted by FF
    name.  Inputs must agree by name (locking never renames Q nets or
    PIs).
    """
    if sorted(comb.inputs) != sorted(oracle.inputs):
        raise NetlistError("oracle input interface does not match")
    if len(comb.outputs) != len(oracle.outputs):
        raise NetlistError("oracle output interface does not match")
    return dict(zip(comb.outputs, oracle.outputs))


def sat_attack(
    locked_netlist: Circuit,
    oracle: OracleProtocol,
    max_iterations: int = 256,
    solver: Optional[Solver] = None,
) -> SatAttackResult:
    """Run the DIP loop against *locked_netlist* using *oracle*.

    Sequential netlists are first reduced to their combinational core
    (pseudo-PI/PO transformation), matching the paper's preprocessing.
    The oracle must expose the same input/output interface (it will, if
    built from the corresponding original design).

    *solver*, when given, replaces the default incremental CDCL with
    any Solver-compatible object — in particular a
    :class:`~repro.sat.portfolio.PortfolioSolver`, which races N
    configurations per DIP query and shares learned clauses between
    miter iterations.  It must be fresh (no clauses added yet).
    """
    comb = _comb_view(locked_netlist)
    if not comb.key_inputs:
        raise NetlistError("netlist has no key inputs; nothing to attack")
    oracle_output_of = _interface_map(comb, oracle)

    if solver is None:
        solver = Solver()

    def encode_copy(shared: Mapping[str, int]) -> CircuitEncoder:
        cnf = CNF(num_vars=solver.num_vars)
        encoder = CircuitEncoder(cnf, comb, net_vars=shared)
        solver.add_cnf(cnf)
        return encoder

    t_start = time.perf_counter()
    # Touch the loop counters so they appear in metric tables even for
    # the paper's headline case (UNSAT at iteration 1: zero of each).
    _metrics.inc("attack.sat.iterations", 0)
    _metrics.inc("attack.sat.oracle_queries", 0)
    with trace_span(
        "attack.sat", design=comb.name, key_bits=len(comb.key_inputs)
    ) as attack_span:
        with trace_span("attack.sat.encode"):
            copy1 = encode_copy({})
            pi_vars = {net: copy1.var_of[net] for net in comb.inputs}
            copy2 = encode_copy(pi_vars)

            # Miter: diff <-> OR over per-output XORs; assumed true per
            # DIP query.
            miter_cnf = CNF(num_vars=solver.num_vars)
            xor_vars = []
            for net in comb.outputs:
                x = miter_cnf.new_var()
                miter_cnf.add_xor(x, copy1.var_of[net], copy2.var_of[net])
                xor_vars.append(x)
            diff = miter_cnf.new_var()
            miter_cnf.add_or(diff, xor_vars)
            solver.add_cnf(miter_cnf)

        result = SatAttackResult(
            completed=False, key=None, iterations=0,
            unsat_at_first_iteration=False,
        )
        for iteration in range(max_iterations):
            with trace_span("attack.sat.iteration", index=iteration + 1):
                if not solver.solve([diff]):
                    result.completed = True
                    break
                model = solver.model()
                dip = {net: int(model[var]) for net, var in pi_vars.items()}
                result.dips.append(dip)
                result.iterations += 1
                response = oracle.query(dip)
                result.oracle_queries += 1
                _metrics.inc("attack.sat.oracle_queries")
                # Pin both copies to the oracle's answer on this DIP.
                for copy in (copy1, copy2):
                    cnf = CNF(num_vars=solver.num_vars)
                    encoder = CircuitEncoder(
                        cnf, comb,
                        net_vars={
                            net: copy.var_of[net] for net in comb.key_inputs
                        },
                    )
                    for net, value in dip.items():
                        var = encoder.var_of[net]
                        cnf.add_clause([var if value else -var])
                    for net in comb.outputs:
                        var = encoder.var_of[net]
                        value = response[oracle_output_of[net]]
                        cnf.add_clause([var if value else -var])
                    solver.add_cnf(cnf)
                result.iteration_stats.append(IterationStats(
                    index=result.iterations,
                    seconds=time.perf_counter() - t_start,
                    solver_decisions=solver.num_decisions,
                    solver_conflicts=solver.num_conflicts,
                    solver_propagations=solver.num_propagations,
                    oracle_queries=result.oracle_queries,
                    clauses=solver.num_clauses,
                ))
                _metrics.inc("attack.sat.iterations")

        result.unsat_at_first_iteration = (
            result.completed and result.iterations == 0
        )
        result.solver_conflicts = solver.num_conflicts
        result.solver_decisions = solver.num_decisions
        if result.completed:
            with trace_span("attack.sat.key_extract"):
                if solver.solve([]):
                    model = solver.model()
                    result.key = {
                        net: int(model[copy1.var_of[net]])
                        for net in comb.key_inputs
                    }
                else:
                    # over-constrained: no consistent key at all
                    result.key = None
        attack_span.annotate(
            iterations=result.iterations, completed=result.completed,
            unsat_at_first=result.unsat_at_first_iteration,
        )
    return result


def verify_key_against_oracle(
    locked_netlist: Circuit,
    oracle: OracleProtocol,
    key: Mapping[str, int],
    samples: int = 64,
    rng: Optional[random.Random] = None,
) -> float:
    """Fraction of random patterns on which *key* matches the oracle.

    1.0 means the recovered key reproduces the chip on every sampled
    pattern (the attack truly decrypted the design); for GK-locked
    designs this lands well below 1.0 no matter the key, because the
    combinational netlist itself is glitch-blind.
    """
    rng = rng or random.Random(0)
    comb = _comb_view(locked_netlist)
    from ..netlist.compiled import compile_circuit

    oracle_output_of = _interface_map(comb, oracle)
    # Draw every pattern first (the same stream the per-pattern loop
    # consumed), then resolve both sides in lane-wide passes.
    patterns = [
        {net: rng.randint(0, 1) for net in comb.inputs}
        for _ in range(samples)
    ]
    responses = oracle.query_batch(patterns)
    assignments = [dict(pattern, **key) for pattern in patterns]
    candidate = compile_circuit(comb).query_outputs(assignments)
    matches = 0
    for values, response in zip(candidate, responses):
        if all(
            values[net] == response[oracle_output_of[net]]
            for net in comb.outputs
        ):
            matches += 1
    return matches / samples
