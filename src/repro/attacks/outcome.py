"""`AttackOutcome`: one result shape for seven attack families.

The attack modules each return a result dataclass tuned to their own
mechanics (`SatAttackResult` counts DIPs, `RemovalResult` counts swept
gates, `ScanAttackResult` maps flip-flops to parities...).  The arena
and the campaign engine need to compare them, so this module defines
the common denominator every family normalizes into: did the attack
finish, what key did it recover, is that key *equivalence-checked*
correct, how many oracle queries did it spend, how long did it run,
and how corrupted is the netlist the attacker walks away with.

The normalization itself lives with each registered runner
(:mod:`repro.attacks.runners`); this module supplies the dataclass and
the designer-side scoring helpers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.compiled import compile_circuit
from ..netlist.equivalence import check_equivalence
from ..netlist.transform import extract_combinational

__all__ = ["AttackOutcome", "recovered_corruption", "score_recovery"]


@dataclass
class AttackOutcome:
    """The normal form of one attack run.

    ``key_correct`` and ``corruption`` are *designer-side* scores: they
    use ground truth (the original netlist) the attacker does not have,
    and are ``None`` when the attack recovers no key / no netlist.  For
    a GK-locked design, ``key_correct`` is Boolean-domain equivalence —
    it can be ``True`` for *every* key (glitch-blindness, Sec. VI),
    which is exactly the signal the leaderboard should surface.
    """

    attack: str
    #: the attack's own mechanics ran to their termination condition
    completed: bool = False
    #: the attack's own notion of success (family-specific predicate)
    success: bool = False
    #: recovered key assignment, if the family recovers one
    key: Optional[Dict[str, int]] = None
    #: equivalence-checked correctness of the recovered key
    key_correct: Optional[bool] = None
    oracle_queries: int = 0
    wall_time: float = 0.0
    #: fraction of sampled (pattern, output) pairs on which the
    #: attacker's recovered netlist disagrees with the original
    corruption: Optional[float] = None
    #: family-specific extras (JSON-safe scalars/lists/dicts only)
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attack": self.attack,
            "completed": self.completed,
            "success": self.success,
            "key": self.key,
            "key_correct": self.key_correct,
            "oracle_queries": self.oracle_queries,
            "wall_time": self.wall_time,
            "corruption": self.corruption,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackOutcome":
        return cls(
            attack=data["attack"],
            completed=bool(data.get("completed", False)),
            success=bool(data.get("success", False)),
            key=dict(data["key"]) if data.get("key") is not None else None,
            key_correct=data.get("key_correct"),
            oracle_queries=int(data.get("oracle_queries", 0)),
            wall_time=float(data.get("wall_time", 0.0)),
            corruption=data.get("corruption"),
            detail=dict(data.get("detail", {})),
        )


def _comb(circuit: Circuit) -> Circuit:
    if circuit.flip_flops():
        return extract_combinational(circuit).circuit
    return circuit


def recovered_corruption(
    original: Circuit,
    attacked: Circuit,
    key: Mapping[str, int],
    rng: Optional[random.Random] = None,
) -> Optional[float]:
    """Mismatch rate of *attacked* under *key* against *original*.

    One bit-parallel pass of random patterns through both compiled
    combinational views (inputs matched by name, outputs positionally,
    like :func:`~repro.netlist.equivalence.check_equivalence`); the
    fraction of disagreeing (pattern, output) pairs.  ``None`` when the
    interfaces cannot be aligned.
    """
    a = _comb(original)
    b = _comb(attacked)
    if sorted(a.inputs) != sorted(b.inputs):
        return None
    if len(a.outputs) != len(b.outputs):
        return None
    if set(b.key_inputs) - set(key):
        return None
    rng = rng or random.Random(0xA77AC)
    compiled_a = compile_circuit(a)
    patterns = [
        {net: rng.randint(0, 1) for net in a.inputs}
        for _ in range(compiled_a.lanes)
    ]
    got_a = compiled_a.query_outputs(patterns)
    got_b = compile_circuit(b, compiled_a.lanes).query_outputs(
        [dict(pattern, **key) for pattern in patterns]
    )
    observed = mismatched = 0
    for values_a, values_b in zip(got_a, got_b):
        for net_a, net_b in zip(a.outputs, b.outputs):
            if values_a[net_a] is None or values_b[net_b] is None:
                continue
            observed += 1
            if values_a[net_a] != values_b[net_b]:
                mismatched += 1
    if not observed:
        return None
    return mismatched / observed


def score_recovery(
    original: Circuit,
    attacked: Circuit,
    key: Optional[Mapping[str, int]],
    rng: Optional[random.Random] = None,
) -> Tuple[Optional[bool], Optional[float]]:
    """Designer-side (key_correct, corruption) for a recovered key.

    ``key_correct`` is full SAT equivalence (bit-parallel prefilter
    first); ``corruption`` the sampled mismatch rate — 0.0 whenever the
    equivalence proof succeeds.  Both ``None`` when no key came back or
    the interfaces don't line up.
    """
    if key is None:
        return None, None
    try:
        result = check_equivalence(original, attacked, key_b=key)
    except NetlistError:
        return None, None
    if result.equivalent:
        return True, 0.0
    return False, recovered_corruption(original, attacked, key, rng=rng)
