"""The attack registry: canonical names, runners, capability tags.

Mirror of :mod:`repro.locking.registry` for the offense side.  Every
attack family registers a *runner* — a uniform entry point taking an
:class:`AttackContext` (the locked design plus knobs) and returning an
:class:`~repro.attacks.outcome.AttackOutcome` — so the campaign
workers, the CLI, and the arena all drive heterogeneous attacks
through one signature and read one result shape.

Capability tags:

* ``oracle:io``        — queries an activated chip's Boolean I/O
  (:class:`~repro.attacks.oracle.CombinationalOracle`).
* ``oracle:timing``    — needs at-speed measurements of the chip
  (two-vector tests or clocked traces).
* ``oracle:sequence``  — replays input sequences from reset (the
  unrolling attack's trace oracle).
* ``oracle-free``      — works from the netlist alone (the removal
  attack validates with the oracle only when offered one).
* ``combinational-only`` — consumes a combinational attacker netlist;
  sequential targets go through the pseudo-PI/PO reduction (scan
  access assumed).
* ``gk-specific``      — exploits GK structure (``metadata["gks"]``);
  meaningless against schemes without it.
* ``needs-clock``      — needs the design's clock period.
* ``approximate``      — may settle for an approximate key (AppSAT).

:func:`incompatibility` turns the tag algebra into the arena's
skip-with-reason decisions.
"""

from __future__ import annotations

import importlib
import random
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Mapping,
    Optional, Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..locking.base import LockedCircuit
    from ..locking.registry import SchemeInfo
    from ..sta.clock import ClockSpec
    from .outcome import AttackOutcome

__all__ = [
    "AttackContext",
    "AttackInfo",
    "register_attack",
    "attack_names",
    "attack_info",
    "attack_infos",
    "run_attack",
    "incompatibility",
    "ensure_attacks_loaded",
]

#: Modules whose import registers attack runners.
_PROVIDERS: Tuple[str, ...] = ("repro.attacks.runners",)

_ATTACKS: Dict[str, "AttackInfo"] = {}
_LOADED = False


@dataclass
class AttackContext:
    """Everything a registered runner gets to work with.

    The *attacker's view* convention is uniform: runners call
    :meth:`target` for the netlist under attack, which is the exposed
    Boolean key view for GK-family schemes (``metadata["gks"]``, the
    paper's Sec. VI preprocessing) and the locked netlist otherwise.
    """

    locked: "LockedCircuit"
    clock: Optional["ClockSpec"] = None
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    #: campaign/arena cache for cross-run state (portfolio warm-start
    #: clause pools); ``None`` disables persistence, never the attack.
    cache: Optional[Any] = None

    def rng(self, salt: int = 0) -> random.Random:
        return random.Random(self.seed * 1000003 + salt)

    def target(self):
        from ..core.flow import expose_gk_keys

        if "gks" in self.locked.metadata:
            return expose_gk_keys(self.locked)
        return self.locked.circuit

    def param(self, name: str, default: Any) -> Any:
        value = self.params.get(name, default)
        return type(default)(value) if default is not None else value


@dataclass(frozen=True)
class AttackInfo:
    """Registry entry: how to run an attack and what it needs."""

    name: str
    runner: Callable[[AttackContext], "AttackOutcome"]
    description: str = ""
    tags: FrozenSet[str] = field(default_factory=frozenset)

    def run(self, context: AttackContext) -> "AttackOutcome":
        return self.runner(context)


def register_attack(
    name: str,
    *,
    description: str = "",
    tags: Tuple[str, ...] = (),
):
    """Function decorator adding one attack runner to the registry."""

    def decorator(runner):
        if name in _ATTACKS:
            raise ValueError(f"attack {name!r} registered twice")
        _ATTACKS[name] = AttackInfo(
            name=name,
            runner=runner,
            description=description,
            tags=frozenset(tags),
        )
        return runner

    return decorator


def ensure_attacks_loaded() -> None:
    """Import every provider module once, filling the registry."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    for module in _PROVIDERS:
        importlib.import_module(module)


def attack_names() -> List[str]:
    """Registered attack names, sorted (the one authoritative list)."""
    ensure_attacks_loaded()
    return sorted(_ATTACKS)


def attack_info(name: str) -> AttackInfo:
    ensure_attacks_loaded()
    try:
        return _ATTACKS[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; choose from "
            f"{', '.join(sorted(_ATTACKS))}"
        ) from None


def attack_infos() -> List[AttackInfo]:
    ensure_attacks_loaded()
    return [_ATTACKS[name] for name in sorted(_ATTACKS)]


def run_attack(name: str, context: AttackContext) -> "AttackOutcome":
    """Run the attack registered under *name*."""
    return attack_info(name).run(context)


def incompatibility(
    scheme: "SchemeInfo", attack: AttackInfo
) -> Optional[str]:
    """Why this scheme x attack cell cannot run — or ``None`` if it can.

    The arena skips (never errors) cells with a reason; keeping the
    rule here, next to the tag definitions, means a new scheme or
    attack states its capabilities once and every harness agrees.
    """
    if "gk-specific" in attack.tags and "gk-family" not in scheme.tags:
        return (
            f"attack {attack.name!r} targets GK structures; scheme "
            f"{scheme.name!r} inserts none"
        )
    return None
