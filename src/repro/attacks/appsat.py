"""AppSAT: approximate deobfuscation (Shamsi et al. [10]).

The GK paper's introduction notes that point-function schemes "have to
rely on other encryption techniques to increase the corruptibility of
the incorrect key-vectors.  Unfortunately, an attacking method [10]
exploited the dependence on other encryption techniques to crack these
SAT attack-resistant methods."

AppSAT is that method: it interleaves exact DIP iterations with batches
of *random* oracle queries.  Keys that are wrong in the high-corruption
layer (XOR key-gates) fail random queries almost surely and get pruned
fast; once the candidate key's observed error rate drops below a
threshold, the attack stops and declares the design *approximately*
deobfuscated — the remaining error is the point function's single
pattern, which is negligible for piracy purposes.

Against GK-locked designs AppSAT degenerates exactly like the plain SAT
attack: the key bits are combinationally non-influential, every
candidate key has the *same* (high) error against the real chip, and
random-query reconciliation can never repair it — the loop ends with no
consistent key or an arbitrary one that fails validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.compiled import compile_circuit
from ..netlist.transform import extract_combinational
from ..sat.cnf import CNF
from ..sat.solver import Solver
from ..sat.tseitin import CircuitEncoder
from .oracle import OracleProtocol
from .sat_attack import _comb_view, _interface_map

__all__ = ["AppSatResult", "appsat_attack"]


@dataclass
class AppSatResult:
    """Outcome of one AppSAT run."""

    key: Optional[Dict[str, int]]
    dip_iterations: int = 0
    random_queries: int = 0
    repaired_queries: int = 0  # random patterns that pruned keys
    #: observed error rate of the returned key on the final random batch
    estimated_error: float = 1.0
    settled: bool = False  # error dropped below the threshold

    @property
    def approximately_correct(self) -> bool:
        return self.settled and self.key is not None


def appsat_attack(
    locked_netlist: Circuit,
    oracle: OracleProtocol,
    rng: Optional[random.Random] = None,
    dips_per_round: int = 2,
    queries_per_round: int = 24,
    error_threshold: float = 0.0,
    max_rounds: int = 24,
    solver: Optional[Solver] = None,
) -> AppSatResult:
    """Run AppSAT against *locked_netlist* with the activated chip.

    Each round: up to *dips_per_round* exact DIP iterations, then
    *queries_per_round* random patterns evaluated under the current
    candidate key.  Mismatching patterns are added as constraints (they
    prune the candidate); when a whole batch matches (observed error <=
    *error_threshold*), the key is declared approximately correct.

    *solver* swaps in any Solver-compatible object (e.g. a
    :class:`~repro.sat.portfolio.PortfolioSolver`); it must be fresh.
    """
    rng = rng or random.Random(0)
    comb = _comb_view(locked_netlist)
    if not comb.key_inputs:
        raise NetlistError("netlist has no key inputs; nothing to attack")
    oracle_output_of = _interface_map(comb, oracle)

    if solver is None:
        solver = Solver()

    def encode_copy(shared: Mapping[str, int]) -> CircuitEncoder:
        cnf = CNF(num_vars=solver.num_vars)
        encoder = CircuitEncoder(cnf, comb, net_vars=shared)
        solver.add_cnf(cnf)
        return encoder

    copy1 = encode_copy({})
    pi_vars = {net: copy1.var_of[net] for net in comb.inputs}
    copy2 = encode_copy(pi_vars)
    miter = CNF(num_vars=solver.num_vars)
    xor_vars = []
    for net in comb.outputs:
        x = miter.new_var()
        miter.add_xor(x, copy1.var_of[net], copy2.var_of[net])
        xor_vars.append(x)
    diff = miter.new_var()
    miter.add_or(diff, xor_vars)
    solver.add_cnf(miter)

    def pin_pattern(pattern: Dict[str, int], response) -> None:
        """Constrain both key copies to agree with the chip on pattern."""
        for copy in (copy1, copy2):
            cnf = CNF(num_vars=solver.num_vars)
            encoder = CircuitEncoder(
                cnf, comb,
                net_vars={net: copy.var_of[net] for net in comb.key_inputs},
            )
            for net, value in pattern.items():
                var = encoder.var_of[net]
                cnf.add_clause([var if value else -var])
            for net in comb.outputs:
                value = response[oracle_output_of[net]]
                var = encoder.var_of[net]
                cnf.add_clause([var if value else -var])
            solver.add_cnf(cnf)

    def candidate_key() -> Optional[Dict[str, int]]:
        if not solver.solve([]):
            return None
        model = solver.model()
        return {net: int(model[copy1.var_of[net]]) for net in comb.key_inputs}

    result = AppSatResult(key=None)
    no_more_dips = False
    for _round in range(max_rounds):
        # Exact phase: a few DIP iterations.
        for _ in range(dips_per_round):
            if no_more_dips:
                break
            if not solver.solve([diff]):
                no_more_dips = True
                break
            model = solver.model()
            dip = {net: int(model[var]) for net, var in pi_vars.items()}
            result.dip_iterations += 1
            pin_pattern(dip, oracle.query(dip))

        # Approximate phase: random-query reconciliation.  Patterns are
        # drawn in the same order the per-query loop used, then both
        # sides resolve in lane-wide bit-parallel passes.
        key = candidate_key()
        if key is None:
            return result
        patterns = [
            {net: rng.randint(0, 1) for net in comb.inputs}
            for _ in range(queries_per_round)
        ]
        responses = oracle.query_batch(patterns)
        result.random_queries += queries_per_round
        candidate = compile_circuit(comb).query_outputs(
            [dict(pattern, **key) for pattern in patterns]
        )
        mismatches = 0
        for pattern, response, values in zip(patterns, responses, candidate):
            if any(
                values[net] != response[oracle_output_of[net]]
                for net in comb.outputs
            ):
                mismatches += 1
                result.repaired_queries += 1
                pin_pattern(pattern, response)
        error = mismatches / queries_per_round
        result.key = key
        result.estimated_error = error
        if error <= error_threshold:
            result.settled = True
            return result
        if no_more_dips and mismatches == 0:
            result.settled = True
            return result
    return result
