"""Timed Characteristic Function (TCF) SAT — the "enhanced SAT attack"
of paper Sec. V-B (after Ho et al. [3]).

[3] encodes a circuit's *timing* into SAT by expanding each net over
discrete time ticks: a gate with delay ``d`` satisfies
``out(t) = f(in(t - d))``, with a settled pre-transition copy supplying
values for ``t < d``.  A two-vector test (V1 settled, V2 applied at
t = 0) then exposes delay behaviour: if a path is slower than the
sample time, the sampled output still shows stale V1 logic.  This is
exactly our event simulator's transport-delay semantics, transcribed
into CNF — so TCF-SAT *can* reason about delays (it generates delay
tests and cracks delay locking like TDK, where the delay key selects
arms of different speed).

What it cannot do is see a **glitch key**: in a TCF model the key input
is a static Boolean variable, constant over all ticks.  A GK only
deviates from its constant-mode function *while the key is mid-
transition*; with a static key the timed model collapses to the same
glitch-blind function for both key values, the miter has no DIP, and
the attack fails exactly like the untimed one — "we can never derive
the value transmitted on the glitch through the CNF and TCF".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..sat.cnf import CNF
from ..sat.solver import Solver
from ..sat.tseitin import encode_gate_function
from .oracle import TwoVectorOracleProtocol

__all__ = ["TimedCopy", "encode_timed", "TcfAttackResult", "tcf_attack",
           "two_vector_response", "SimulatedTwoVectorOracle",
           "find_delay_test"]


@dataclass
class TimedCopy:
    """Variable map of one time-expanded circuit copy."""

    circuit: Circuit
    ticks: int
    dt: float
    v1: Dict[str, int]  # settled pre-transition copy (per net)
    v2: Dict[str, int]  # primary-input values applied at t = 0
    keys: Dict[str, int]  # static key variables
    timed: Dict[Tuple[str, int], int]  # (net, tick) -> var

    def at(self, net: str, tick: int) -> int:
        return self.timed[(net, tick)]

    def sampled(self, net: str) -> int:
        return self.timed[(net, self.ticks)]


def encode_timed(
    cnf: CNF,
    circuit: Circuit,
    ticks: int,
    dt: float,
    delay_override: Optional[Mapping[str, float]] = None,
    shared_v1: Optional[Mapping[str, int]] = None,
    shared_v2: Optional[Mapping[str, int]] = None,
    shared_keys: Optional[Mapping[str, int]] = None,
) -> TimedCopy:
    """Time-expand *circuit* over ``ticks`` steps of ``dt`` ns.

    *delay_override* replaces a gate's nominal delay (delay-defect
    injection).  ``shared_*`` maps let several copies share the test
    vectors while keeping keys independent (the TCF miter).
    """
    if circuit.flip_flops():
        raise NetlistError("encode_timed expects a combinational circuit")
    overrides = delay_override or {}
    v1: Dict[str, int] = dict(shared_v1 or {})
    v2: Dict[str, int] = dict(shared_v2 or {})
    keys: Dict[str, int] = dict(shared_keys or {})
    timed: Dict[Tuple[str, int], int] = {}

    def v1_var(net: str) -> int:
        var = v1.get(net)
        if var is None:
            var = cnf.new_var()
            v1[net] = var
        return var

    for net in circuit.inputs:
        v1_var(net)
        if net not in v2:
            v2[net] = cnf.new_var()
    for net in circuit.key_inputs:
        if net not in keys:
            keys[net] = cnf.new_var()
        # The key is static: identical in the settled copy and at all ticks.
        v1[net] = keys[net]

    order = circuit.topological_order()

    # Settled copy under (V1, K).
    for gate in order:
        out = v1_var(gate.output)
        operands = [v1_var(net) for net in gate.input_nets()]
        encode_gate_function(cnf, gate.function, out, operands, gate.truth_table)

    # Timed expansion under (V2 from t=0, K static).
    for net in circuit.inputs:
        for t in range(ticks + 1):
            timed[(net, t)] = v2[net]
    for net in circuit.key_inputs:
        for t in range(ticks + 1):
            timed[(net, t)] = keys[net]
    for gate in order:
        delay = overrides.get(gate.name, gate.cell.delay)
        d_ticks = max(0, int(round(delay / dt)))
        for t in range(ticks + 1):
            out = cnf.new_var()
            timed[(gate.output, t)] = out
            source_tick = t - d_ticks
            operands = []
            for net in gate.input_nets():
                if source_tick < 0:
                    operands.append(v1_var(net))
                else:
                    operands.append(timed[(net, source_tick)])
            encode_gate_function(
                cnf, gate.function, out, operands, gate.truth_table
            )
    return TimedCopy(
        circuit=circuit, ticks=ticks, dt=dt, v1=v1, v2=v2, keys=keys, timed=timed
    )


def two_vector_response(
    circuit: Circuit,
    v1: Mapping[str, int],
    v2: Mapping[str, int],
    sample_time: float,
    key: Optional[Mapping[str, int]] = None,
    delay_mode: str = "transport",
) -> Dict[str, int]:
    """The physical chip's answer to a launch/capture test.

    Event-simulates *circuit* with inputs settled at *v1*, switched to
    *v2* at t = 0, and samples every primary output at *sample_time* —
    the at-speed measurement an attacker with tester access performs.
    """
    from ..sim.eventsim import EventSimulator

    sim = EventSimulator(circuit, delay_mode=delay_mode)
    for net in circuit.inputs:
        sim.set_initial(net, v1[net])
    if circuit.key_inputs:
        if key is None:
            raise NetlistError("circuit has key inputs; pass `key`")
        for net in circuit.key_inputs:
            sim.set_initial(net, key[net])
    for net in circuit.inputs:
        if v2[net] != v1[net]:
            sim.drive(net, [(0.0, v2[net])])
    result = sim.run(sample_time + 1e-9)
    return {
        net: result.waveforms[net].value_at(sample_time)
        for net in circuit.outputs
    }


class SimulatedTwoVectorOracle:
    """The activated chip on an at-speed tester, as an oracle object.

    Implements :class:`~repro.attacks.oracle.TwoVectorOracleProtocol`
    by event-simulating *circuit* (under *key*, if it has key inputs)
    per launch/capture test — the default oracle :func:`tcf_attack`
    builds when handed a bare circuit.  Swap in any other
    implementation (a recorded trace, a served tester) the same way
    :class:`~repro.serve.client.RemoteOracle` swaps in for
    :class:`~repro.attacks.oracle.CombinationalOracle`.
    """

    def __init__(
        self,
        circuit: Circuit,
        key: Optional[Mapping[str, int]] = None,
        delay_mode: str = "transport",
    ) -> None:
        self.circuit = circuit
        self.key = key
        self.delay_mode = delay_mode
        self.query_count = 0

    def two_vector(
        self,
        v1: Mapping[str, int],
        v2: Mapping[str, int],
        sample_time: float,
    ) -> Dict[str, Optional[int]]:
        self.query_count += 1
        return two_vector_response(
            self.circuit, v1, v2, sample_time,
            key=self.key, delay_mode=self.delay_mode,
        )


@dataclass
class TcfAttackResult:
    completed: bool = False
    iterations: int = 0
    unsat_at_first_iteration: bool = False
    key: Optional[Dict[str, int]] = None
    dips: List[Tuple[Dict[str, int], Dict[str, int]]] = field(default_factory=list)


def tcf_attack(
    locked: Circuit,
    oracle_circuit: Optional[Circuit] = None,
    oracle_key: Optional[Mapping[str, int]] = None,
    sample_time: float = 0.0,
    dt: float = 0.05,
    max_iterations: int = 64,
    oracle: Optional[TwoVectorOracleProtocol] = None,
    solver: Optional[Solver] = None,
) -> TcfAttackResult:
    """The timed SAT attack: DIP loop over two-vector tests.

    *locked* is the attacker's (combinational) netlist with static key
    inputs; the oracle is the activated chip measured at speed — either
    any :class:`~repro.attacks.oracle.TwoVectorOracleProtocol`
    implementation passed as *oracle*, or the default
    :class:`SimulatedTwoVectorOracle` built from *oracle_circuit* under
    *oracle_key* (possibly keyless).  Succeeds on delay locking (TDK);
    finds no DIP on glitch locking.

    *solver* swaps in any Solver-compatible object (e.g. a
    :class:`~repro.sat.portfolio.PortfolioSolver` — the time-expanded
    CNFs are the largest this repo produces, where racing pays most);
    it must be fresh.
    """
    if oracle is None:
        if oracle_circuit is None:
            raise NetlistError("pass either `oracle` or `oracle_circuit`")
        oracle = SimulatedTwoVectorOracle(oracle_circuit, oracle_key)
    elif oracle_circuit is not None:
        raise NetlistError("pass `oracle` or `oracle_circuit`, not both")
    if sample_time <= 0:
        raise NetlistError("sample_time must be positive")
    ticks = int(round(sample_time / dt))
    if solver is None:
        solver = Solver()

    cnf = CNF()
    copy1 = encode_timed(cnf, locked, ticks, dt)
    copy2 = encode_timed(
        cnf,
        locked,
        ticks,
        dt,
        shared_v1={net: copy1.v1[net] for net in locked.inputs},
        shared_v2=copy1.v2,
    )
    xor_vars = []
    for net in locked.outputs:
        x = cnf.new_var()
        cnf.add_xor(x, copy1.sampled(net), copy2.sampled(net))
        xor_vars.append(x)
    diff = cnf.new_var()
    cnf.add_or(diff, xor_vars)
    solver.add_cnf(cnf)

    result = TcfAttackResult()
    for _ in range(max_iterations):
        if not solver.solve([diff]):
            result.completed = True
            break
        model = solver.model()
        v1 = {net: int(model[copy1.v1[net]]) for net in locked.inputs}
        v2 = {net: int(model[copy1.v2[net]]) for net in locked.inputs}
        result.dips.append((v1, v2))
        result.iterations += 1
        response = oracle.two_vector(v1, v2, sample_time)
        for copy in (copy1, copy2):
            pin = CNF(num_vars=solver.num_vars)
            constrained = encode_timed(
                pin, locked, ticks, dt, shared_keys=copy.keys
            )
            for net in locked.inputs:
                var1, var2 = constrained.v1[net], constrained.v2[net]
                pin.add_clause([var1 if v1[net] else -var1])
                pin.add_clause([var2 if v2[net] else -var2])
            for net in locked.outputs:
                value = response[net]
                if value is None:
                    continue  # metastable observation constrains nothing
                var = constrained.sampled(net)
                pin.add_clause([var if value else -var])
            solver.add_cnf(pin)

    result.unsat_at_first_iteration = result.completed and result.iterations == 0
    if result.completed and solver.solve([]):
        model = solver.model()
        result.key = {
            net: int(model[copy1.keys[net]]) for net in locked.key_inputs
        }
    return result


def find_delay_test(
    good: Circuit,
    slow_gate: str,
    extra_delay: float,
    sample_time: float,
    dt: float = 0.05,
) -> Optional[Tuple[Dict[str, int], Dict[str, int]]]:
    """TCF as [3] used it: generate a two-vector test for a delay defect.

    Returns (V1, V2) whose sampled outputs differ between the nominal
    circuit and one where *slow_gate* is slower by *extra_delay* ns —
    or None if the defect is untestable at this sample time.
    """
    ticks = int(round(sample_time / dt))
    solver = Solver()
    cnf = CNF()
    nominal = encode_timed(cnf, good, ticks, dt)
    defective = encode_timed(
        cnf,
        good,
        ticks,
        dt,
        delay_override={slow_gate: good.gates[slow_gate].cell.delay + extra_delay},
        shared_v1={net: nominal.v1[net] for net in good.inputs},
        shared_v2=nominal.v2,
        shared_keys=nominal.keys,
    )
    xor_vars = []
    for net in good.outputs:
        x = cnf.new_var()
        cnf.add_xor(x, nominal.sampled(net), defective.sampled(net))
        xor_vars.append(x)
    diff = cnf.new_var()
    cnf.add_or(diff, xor_vars)
    cnf.add_clause([diff])
    solver.add_cnf(cnf)
    if not solver.solve():
        return None
    model = solver.model()
    v1 = {net: int(model[nominal.v1[net]]) for net in good.inputs}
    v2 = {net: int(model[nominal.v2[net]]) for net in good.inputs}
    return v1, v2
