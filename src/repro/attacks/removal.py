"""Removal attack via signal-probability skew (Yasin et al. [15][16]).

SAT-attack-resistant blocks (SARLock, Anti-SAT) work by making the
key-dependent corruption *rare*: their flip signal is 1 on at most a
handful of input patterns.  That rarity is also their fingerprint — the
flip net's signal probability under random stimulus is heavily skewed,
far outside what load-bearing logic exhibits.  The attack:

1. estimate every net's signal probability by random simulation with
   random keys,
2. collect skewed nets that gate a primary output through an XOR/XNOR
   (the classic point-function wiring), most-skewed first,
3. filter to nets whose fan-in cone contains key inputs (benign
   design logic that happens to be skewed has none), then tentatively
   replace each with its constant majority value and keep the edit only
   if the result still matches the **oracle** (the activated chip) on a
   batch of random patterns — the attacker's functional validation,
4. sweep the dead security block.

Against XOR/XNOR key-gates or the paper's GK no removable skewed net
exists: every candidate either fails the oracle check or was never
skewed.  Even a located GK would leave the attacker guessing
buffer-vs-inverter per key-gate (Sec. V-C), which
:mod:`repro.attacks.enhanced_removal` escalates to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..locking.base import LockedCircuit
from ..netlist.circuit import Circuit
from ..netlist.compiled import compile_circuit
from ..netlist.transform import extract_combinational
from ..synth.optimize import sweep_dead_gates
from .oracle import CombinationalOracle

__all__ = ["RemovalResult", "signal_probabilities", "removal_attack"]


@dataclass
class RemovalResult:
    """Outcome of one removal attack."""

    located: List[str] = field(default_factory=list)  # candidates, ranked
    removed_nets: List[str] = field(default_factory=list)  # oracle-validated
    gates_swept: int = 0
    restored: Optional[Circuit] = None
    #: fraction of random patterns on which the restored netlist matches
    #: the original function (designer-side ground truth)
    restored_accuracy: Optional[float] = None

    @property
    def success(self) -> bool:
        return bool(self.removed_nets) and (self.restored_accuracy or 0.0) == 1.0


def signal_probabilities(
    circuit: Circuit,
    samples: int,
    rng: random.Random,
) -> Tuple[Dict[str, float], Dict[str, bool]]:
    """Signal statistics under uniform random inputs *and keys*.

    Returns ``(probabilities, key_sensitive)``: P(net = 1), and whether
    the net's value ever changed between two random keys on the same
    input pattern — ordinary design logic is key-insensitive, so this
    flag separates security structures from benign skewed nets.
    Expects a combinational circuit (extract first for sequential).
    X evaluations count as 0.5.
    """
    compiled = compile_circuit(circuit)
    # The nets the per-sample evaluation dict used to report, in the
    # same insertion order: inputs, keys, then gate outputs in schedule
    # (= topological) order.  Undriven stray nets never appeared.
    net_order = (
        list(circuit.inputs) + list(circuit.key_inputs)
        + list(compiled.out_names)
    )
    ids = [compiled.net_ids[net] for net in net_order]
    ones = [0] * len(ids)
    unknowns = [0] * len(ids)
    sensitive_flags = [False] * len(ids)

    num_nets = compiled.num_nets
    lanes = compiled.lanes
    remaining = samples
    while remaining:
        used = min(lanes, remaining)
        remaining -= used
        lane_mask = compiled.mask if used == lanes else (1 << used) - 1
        va = [0] * num_nets
        ka = [0] * num_nets
        vb = [0] * num_nets
        kb = [0] * num_nets
        for lane in range(used):
            bit = 1 << lane
            pattern = {net: rng.randint(0, 1) for net in circuit.inputs}
            key_a = {net: rng.randint(0, 1) for net in circuit.key_inputs}
            key_b = {net: rng.randint(0, 1) for net in circuit.key_inputs}
            for net, value in pattern.items():
                nid = compiled.net_ids[net]
                if value:
                    va[nid] |= bit
                    vb[nid] |= bit
                ka[nid] |= bit
                kb[nid] |= bit
            for net, value in key_a.items():
                nid = compiled.net_ids[net]
                if value:
                    va[nid] |= bit
                ka[nid] |= bit
            for net, value in key_b.items():
                nid = compiled.net_ids[net]
                if value:
                    vb[nid] |= bit
                kb[nid] |= bit
        compiled.run_planes(va, ka)
        compiled.run_planes(vb, kb)
        for j, nid in enumerate(ids):
            v1, k1 = va[nid], ka[nid]
            v2, k2 = vb[nid], kb[nid]
            ones[j] += bin(v1 & k1 & lane_mask).count("1")
            unknowns[j] += bin(~k1 & lane_mask).count("1")
            if not sensitive_flags[j]:
                differ = ((v1 ^ v2) & k1 & k2) | (k1 ^ k2)
                if differ & lane_mask:
                    sensitive_flags[j] = True

    # ones + 0.5*unknowns is a sum of exact halves, so this reproduces
    # the sequential float accumulation bit for bit.
    probs = {
        net: (ones[j] + 0.5 * unknowns[j]) / samples
        for j, net in enumerate(net_order)
    }
    return probs, {
        net: sensitive_flags[j] for j, net in enumerate(net_order)
    }


def _matches_oracle(
    candidate: Circuit,
    oracle: CombinationalOracle,
    rng: random.Random,
    patterns: int,
) -> bool:
    # Kept per-pattern: the early return means batching would change
    # how much of the rng stream gets consumed.
    output_map = dict(zip(candidate.outputs, oracle.outputs))
    compiled = compile_circuit(candidate)
    for _ in range(patterns):
        pattern = {net: rng.randint(0, 1) for net in oracle.inputs}
        response = oracle.query(pattern)
        assignment = dict(pattern)
        for key_net in candidate.key_inputs:
            assignment[key_net] = rng.randint(0, 1)
        values = compiled.query_outputs([assignment])[0]
        if any(
            values[net] != response[output_map[net]]
            for net in candidate.outputs
        ):
            return False
    return True


def removal_attack(
    locked: LockedCircuit,
    oracle: Optional[CombinationalOracle] = None,
    samples: int = 512,
    skew_threshold: float = 0.10,
    validation_patterns: int = 48,
    rng: Optional[random.Random] = None,
    check_samples: int = 128,
) -> RemovalResult:
    """Locate, oracle-validate, and strip point-function blocks.

    *skew_threshold*: a net is a candidate when min(P, 1-P) is below it
    and the net feeds an XOR/XNOR in front of a primary output.  The
    default oracle is built from ``locked.original`` (the attack model
    grants the attacker an activated chip).
    """
    rng = rng or random.Random(1)
    if oracle is None:
        oracle = CombinationalOracle(locked.original)
    netlist = locked.circuit
    comb = (
        extract_combinational(netlist).circuit
        if netlist.flip_flops()
        else netlist.clone()
    )
    probs, _observed_sensitivity = signal_probabilities(comb, samples, rng)

    def key_in_cone(net: str) -> bool:
        """Structural key dependence: benign logic that happens to be
        skewed has no key input in its fan-in and is filtered out."""
        keys = set(comb.key_inputs)
        seen: set = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in keys:
                return True
            driver = comb.driver_of(current)
            if driver is not None:
                stack.extend(driver.pins.values())
        return False

    result = RemovalResult()
    po_set = set(comb.outputs)
    candidates: List[Tuple[float, str]] = []
    for net, p in probs.items():
        skew = min(p, 1.0 - p)
        if skew > skew_threshold:
            continue
        if net in comb.inputs or net in comb.key_inputs:
            continue
        if not key_in_cone(net):
            continue
        driver = comb.driver_of(net)
        if driver is None or driver.function in ("TIE0", "TIE1"):
            continue
        for sink_name, _pin in comb.fanout_pins(net):
            sink = comb.gates[sink_name]
            if sink.function in ("XOR2", "XNOR2") and sink.output in po_set:
                candidates.append((skew, net))
                break
    candidates.sort()
    result.located = [net for _skew, net in candidates]
    if not candidates:
        return result

    restored = comb.clone(f"{comb.name}__removal")
    for _skew, net in candidates:
        trial = restored.clone()
        majority = 1 if probs[net] > 0.5 else 0
        constant = trial.new_net("rm")
        cell = "TIE1_X1" if majority else "TIE0_X1"
        trial.add_gate(trial.new_gate_name("rm"), cell, {}, constant)
        trial.rewire_sinks(net, constant)
        if _matches_oracle(trial, oracle, rng, validation_patterns):
            restored = trial
            result.removed_nets.append(net)
    if not result.removed_nets:
        return result
    result.gates_swept = sweep_dead_gates(restored)
    restored.validate()
    result.restored = restored

    # Designer-side ground truth accuracy.
    original_comb = (
        extract_combinational(locked.original).circuit
        if locked.original.flip_flops()
        else locked.original
    )
    output_map = dict(zip(restored.outputs, original_comb.outputs))
    patterns_drawn: List[Dict[str, int]] = []
    assignments: List[Dict[str, int]] = []
    for _ in range(check_samples):
        pattern = {net: rng.randint(0, 1) for net in original_comb.inputs}
        assignment = dict(pattern)
        for key_net in restored.key_inputs:
            assignment[key_net] = rng.randint(0, 1)
        patterns_drawn.append(pattern)
        assignments.append(assignment)
    got_all = compile_circuit(restored).query_outputs(assignments)
    want_all = compile_circuit(original_comb).query_outputs(patterns_drawn)
    matches = sum(
        1
        for got, want in zip(got_all, want_all)
        if all(got[net] == want[output_map[net]] for net in restored.outputs)
    )
    result.restored_accuracy = matches / check_samples
    return result
