"""Attacks on logic locking: SAT, removal, enhanced removal, TCF, scan.

Every family also registers a normalized runner with
:mod:`repro.attacks.registry`; harnesses that need uniform results
(the campaign, the arena, the CLI) drive attacks through it.
"""

from .outcome import AttackOutcome, recovered_corruption, score_recovery
from .registry import (
    AttackContext,
    AttackInfo,
    attack_info,
    attack_infos,
    attack_names,
    incompatibility,
    register_attack,
    run_attack,
)
from .oracle import (
    CombinationalOracle,
    OracleProtocol,
    TimingOracle,
    TwoVectorOracleProtocol,
    random_pattern,
)
from .sat_attack import SatAttackResult, sat_attack, verify_key_against_oracle
from .removal import RemovalResult, removal_attack, signal_probabilities
from .enhanced_removal import (
    EnhancedRemovalResult,
    LocatedGk,
    enhanced_removal_attack,
    locate_gk_structures,
)
from .tcf import (
    SimulatedTwoVectorOracle,
    TcfAttackResult,
    encode_timed,
    find_delay_test,
    tcf_attack,
    two_vector_response,
)
from .scan import ScanAttackResult, ScanChain, insert_scan_chain, scan_attack
from .appsat import AppSatResult, appsat_attack
from .unroll import SequentialAttackResult, sequential_sat_attack

__all__ = [
    "AttackOutcome", "recovered_corruption", "score_recovery",
    "AttackContext", "AttackInfo", "attack_info", "attack_infos",
    "attack_names", "incompatibility", "register_attack", "run_attack",
    "CombinationalOracle", "OracleProtocol", "TimingOracle",
    "TwoVectorOracleProtocol", "random_pattern",
    "SatAttackResult", "sat_attack", "verify_key_against_oracle",
    "RemovalResult", "removal_attack", "signal_probabilities",
    "EnhancedRemovalResult", "LocatedGk", "enhanced_removal_attack",
    "locate_gk_structures",
    "SimulatedTwoVectorOracle", "TcfAttackResult", "encode_timed",
    "find_delay_test", "tcf_attack", "two_vector_response",
    "ScanAttackResult", "ScanChain", "insert_scan_chain", "scan_attack",
    "AppSatResult", "appsat_attack",
    "SequentialAttackResult", "sequential_sat_attack",
]
