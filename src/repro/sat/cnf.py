"""CNF formulas with DIMACS-style signed-integer literals.

A literal is a nonzero int: ``+v`` for variable *v*, ``-v`` for its
negation.  :class:`CNF` is a lightweight container used to stage
problems before loading them into :class:`repro.sat.solver.Solver`, and
to read/write the standard DIMACS format for interchange/debugging.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, TextIO, Tuple

__all__ = ["CNF"]


class CNF:
    """A conjunction of clauses over integer variables 1..num_vars."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a literal")
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self.clauses)

    # -- DIMACS ----------------------------------------------------------

    def write_dimacs(self, stream: TextIO) -> None:
        stream.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
        for clause in self.clauses:
            stream.write(" ".join(map(str, clause)) + " 0\n")

    @classmethod
    def read_dimacs(cls, stream: TextIO) -> "CNF":
        cnf = cls()
        declared_vars = None
        pending: List[int] = []
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad DIMACS header: {line!r}")
                declared_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            cnf.add_clause(pending)
        if declared_vars is not None:
            cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf

    # -- convenience encodings -------------------------------------------

    def add_equal(self, a: int, b: int) -> None:
        """a <-> b."""
        self.add_clause([-a, b])
        self.add_clause([a, -b])

    def add_xor(self, out: int, a: int, b: int) -> None:
        """out <-> a XOR b."""
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])

    def add_and(self, out: int, operands: Sequence[int]) -> None:
        """out <-> AND(operands)."""
        for lit in operands:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-lit for lit in operands])

    def add_or(self, out: int, operands: Sequence[int]) -> None:
        """out <-> OR(operands)."""
        for lit in operands:
            self.add_clause([out, -lit])
        self.add_clause([-out] + list(operands))

    def add_mux(self, out: int, a: int, b: int, sel: int) -> None:
        """out <-> (sel ? b : a)."""
        self.add_clause([sel, -a, out])
        self.add_clause([sel, a, -out])
        self.add_clause([-sel, -b, out])
        self.add_clause([-sel, b, -out])
