"""Portfolio SAT: race diverse solver configurations, share clauses.

ManySAT-style portfolio solving for the repo's CDCL
(:class:`~repro.sat.solver.Solver`): N deterministic
:class:`~repro.sat.solver.SolverConfig` variants attack the same
formula in parallel processes, the first answer wins, and the losers
are cancelled.  Three compounding mechanisms:

* **Racing** — heuristic diversity (restart policy, VSIDS decay,
  polarity, randomized decisions) makes per-instance solve-time
  variance work *for* us: the portfolio's wall time is the per-call
  minimum over the member configurations *and* the persistent
  incremental delegate, which races along in the parent process as a
  "shadow" member.  Children are cold per race; the shadow carries
  learned clauses and VSIDS state across the whole attack, so the race
  can never lose to the serial solver by more than polling overhead —
  diversity is pure upside.
* **Clause sharing** — the winner's short learned clauses
  (:meth:`Solver.export_learned`) are harvested into a shared pool and
  injected into every member of the *next* race.  Because the SAT
  attack's miter grows monotonically (DIP constraints are only ever
  added), clauses implied at iteration i remain implied at iteration
  i+1, so injection is sound across the whole attack.
* **Warm starts** — the pool persists through the campaign's
  content-addressed cache (:func:`load_shared_clauses` /
  :func:`store_shared_clauses`), keyed by the attacked netlist and an
  oracle fingerprint, so attack run i+1 starts from the facts run i
  proved.  Only clauses over the *base* encoding's variables are
  persisted (:meth:`PortfolioSolver.persistable_clauses`): the base
  miter encoding is deterministic per netlist, while later variables
  (DIP-constraint auxiliaries) depend on the run's query sequence and
  would silently change meaning in another run.  Seeded clauses are
  imported by the incremental delegate as well as the race children —
  a previous run's distilled key-space prunings speed the shadow up
  directly, which is what makes warm starts pay off even on machines
  where process racing cannot (one core).

:class:`PortfolioSolver` is a drop-in for the incremental
:class:`Solver` everywhere the attacks use one (``add_cnf`` /
``solve(assumptions)`` / ``model`` / counter attributes).  It keeps
the accumulated clause list and replays it into fresh per-race child
solvers; the per-call cold start is what clause sharing amortizes.
Racing uses one pipe per child (first readable pipe wins — no shared
queue to corrupt when losers are terminated mid-write) and reuses the
campaign worker's SIGALRM deadline machinery inside each child.

Determinism contract: one configuration on one clause stream is
bit-reproducible (same model, same conflict/decision counts) in
process and across processes — :func:`solve_one` is the single code
path both sides run.  The *race* is deterministic in its answer
(SAT/UNSAT never varies; any returned model satisfies the formula)
but not in which member answers first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
)

from ..obs import metrics as _metrics
from ..obs.spans import trace_span
from .cnf import CNF
from .solver import Solver, SolverConfig

__all__ = [
    "PortfolioStats",
    "PortfolioSolver",
    "SolveOutcome",
    "SolverConfig",
    "default_portfolio",
    "solve_one",
    "load_shared_clauses",
    "store_shared_clauses",
    "shared_clause_key",
    "oracle_fingerprint",
]

#: Default cap on the length of clauses worth shipping between solvers.
DEFAULT_SHARE_MAX_LENGTH = 8

#: Default cap on the shared pool (clauses); oldest clauses are evicted
#: first — they were learned against the smallest formula and have had
#: the most races to prove their worth.
DEFAULT_SHARED_LIMIT = 4096


# ----------------------------------------------------------------------
# Configuration space
# ----------------------------------------------------------------------

#: The base diversification presets, in priority order.  Index 0 is the
#: serial solver's exact configuration so a 1-wide portfolio degrades
#: to the status quo; the rest vary one axis family each, the spread
#: portfolio solvers have converged on (restart aggressiveness, decay,
#: polarity, decision noise).
_PRESETS: Tuple[SolverConfig, ...] = (
    SolverConfig(),
    SolverConfig(restart="geometric", restart_base=64,
                 restart_factor=1.5, polarity="false"),
    SolverConfig(var_decay=0.85, restart_base=50, polarity="random",
                 random_decision_freq=0.02),
    SolverConfig(var_decay=0.99, restart="geometric", restart_base=128,
                 restart_factor=2.0, polarity="true"),
    SolverConfig(var_decay=0.92, clause_decay=0.995,
                 random_decision_freq=0.05, polarity="random"),
    SolverConfig(restart_base=32, polarity="saved",
                 random_decision_freq=0.01),
    SolverConfig(var_decay=0.8, restart="geometric", restart_base=100,
                 restart_factor=1.3, polarity="false",
                 random_decision_freq=0.03),
    SolverConfig(var_decay=0.97, restart_base=256, polarity="true",
                 random_decision_freq=0.01),
)


def default_portfolio(n: int, base_seed: int = 0) -> Tuple[SolverConfig, ...]:
    """*n* diverse deterministic configurations.

    Cycles the presets, bumping the RNG seed on each lap so lap k's
    randomized members explore different trajectories than lap 0's.
    """
    if n < 1:
        raise ValueError("portfolio size must be >= 1")
    configs = []
    for index in range(n):
        preset = _PRESETS[index % len(_PRESETS)]
        lap = index // len(_PRESETS)
        seed = base_seed + index if (
            lap or preset.random_decision_freq or preset.polarity == "random"
        ) else preset.seed
        configs.append(
            preset if seed == preset.seed
            else SolverConfig(**{**preset.__dict__, "seed": seed})
        )
    return tuple(configs)


# ----------------------------------------------------------------------
# One configuration, one formula: the deterministic unit of work
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SolveOutcome:
    """Everything one configuration's run on one formula produced."""

    sat: bool
    model: Tuple[Tuple[int, bool], ...]  # sorted (var, value); () if UNSAT
    num_conflicts: int
    num_decisions: int
    num_propagations: int
    learned: Tuple[Tuple[int, ...], ...]  # exported short clauses

    def model_dict(self) -> Dict[int, bool]:
        return dict(self.model)


def solve_one(
    clauses: Sequence[Sequence[int]],
    assumptions: Sequence[int],
    config: SolverConfig,
    *,
    shared: Sequence[Sequence[int]] = (),
    export_max_length: int = DEFAULT_SHARE_MAX_LENGTH,
    num_vars: int = 0,
) -> SolveOutcome:
    """Solve *clauses* (+ injected *shared* clauses) under one config.

    The one code path behind in-process solving, race children, and
    the determinism tests: identical inputs produce an identical
    outcome wherever this runs.
    """
    solver = Solver(config)
    if num_vars:
        solver._ensure_var(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    if shared:
        solver.import_clauses(shared)
    sat = solver.solve(assumptions)
    model: Tuple[Tuple[int, bool], ...] = ()
    if sat:
        model = tuple(sorted(solver.model().items()))
    return SolveOutcome(
        sat=sat,
        model=model,
        num_conflicts=solver.num_conflicts,
        num_decisions=solver.num_decisions,
        num_propagations=solver.num_propagations,
        learned=tuple(solver.export_learned(export_max_length)),
    )


def _race_child(
    conn,
    index: int,
    clauses: Sequence[Sequence[int]],
    assumptions: Sequence[int],
    config: SolverConfig,
    shared: Sequence[Sequence[int]],
    export_max_length: int,
    num_vars: int,
    deadline: Optional[float],
) -> None:
    """Race member entry point (child process).

    Reuses the campaign worker's SIGALRM deadline so a member that
    would outlive the race kills itself instead of relying on the
    parent to notice.
    """
    from ..campaign.worker import JobTimeout, _deadline

    try:
        with _deadline(deadline):
            outcome = solve_one(
                clauses, assumptions, config,
                shared=shared, export_max_length=export_max_length,
                num_vars=num_vars,
            )
        conn.send(("ok", index, outcome))
    except JobTimeout:
        conn.send(("timeout", index, None))
    except Exception as exc:  # pragma: no cover - crash reporting path
        conn.send(("error", index, f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# The portfolio solver
# ----------------------------------------------------------------------

@dataclass
class PortfolioStats:
    """Cumulative accounting over one PortfolioSolver's lifetime."""

    races: int = 0
    inline_solves: int = 0
    #: config index -> race wins; index -1 is the incremental shadow
    wins: Dict[int, int] = field(default_factory=dict)
    cancelled: int = 0          # losers terminated
    member_timeouts: int = 0
    shared_pool: int = 0        # current pool size
    clauses_exported: int = 0   # harvested from winners into the pool
    clauses_seeded: int = 0     # injected from a warm-start cache
    fallbacks: int = 0          # process race unavailable -> inline

    def to_dict(self) -> Dict[str, Any]:
        return {
            "races": self.races,
            "inline_solves": self.inline_solves,
            "wins": {str(k): v for k, v in sorted(self.wins.items())},
            "cancelled": self.cancelled,
            "member_timeouts": self.member_timeouts,
            "shared_pool": self.shared_pool,
            "clauses_exported": self.clauses_exported,
            "clauses_seeded": self.clauses_seeded,
            "fallbacks": self.fallbacks,
        }


class PortfolioSolver:
    """Drop-in incremental solver that races a configuration portfolio.

    Speaks the :class:`Solver` interface the attacks use —
    ``add_clause`` / ``add_cnf`` / ``new_var`` / ``solve(assumptions)``
    / ``model`` / ``model_lit`` plus the counter attributes — so
    ``sat_attack(..., solver=PortfolioSolver(n=4))`` is the whole
    integration.  Counters accumulate the *winner's* effort per race,
    keeping :class:`~repro.attacks.sat_attack.IterationStats` sequences
    monotone exactly as with the serial solver.

    ``use_processes=False`` (or a 1-wide portfolio) keeps one
    persistent incremental delegate solving inline — the deterministic
    mode the property suites pin against the serial solver — while
    still harvesting its exports into the shared clause pool.  The
    pool is injected into race *children* only; the delegate's clause
    stream stays identical to a lone serial solver's (see
    :meth:`_prepare_delegate`).
    """

    def __init__(
        self,
        configs: Optional[Sequence[SolverConfig]] = None,
        n: int = 4,
        *,
        base_seed: int = 0,
        share_max_length: int = DEFAULT_SHARE_MAX_LENGTH,
        shared_limit: int = DEFAULT_SHARED_LIMIT,
        deadline: Optional[float] = None,
        use_processes: bool = True,
        mp_start_method: Optional[str] = None,
    ) -> None:
        self.configs: Tuple[SolverConfig, ...] = (
            tuple(configs) if configs is not None
            else default_portfolio(n, base_seed)
        )
        if not self.configs:
            raise ValueError("portfolio needs at least one configuration")
        self.share_max_length = share_max_length
        self.shared_limit = shared_limit
        self.deadline = deadline
        self.use_processes = use_processes and len(self.configs) > 1
        self.mp_start_method = mp_start_method
        self.stats = PortfolioStats()

        self._clauses: List[Tuple[int, ...]] = []
        self._num_vars = 0
        #: variable count at the first solve call — the base encoding's
        #: extent, the only variables stable across runs (see
        #: :meth:`persistable_clauses`)
        self._base_vars: Optional[int] = None
        #: shared pool, insertion-ordered; keys are normalized clauses
        self._shared: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        #: warm-start clauses from a previous run's cache; unlike the
        #: within-run pool these also go to the incremental delegate
        self._seeded: List[Tuple[int, ...]] = []
        self._model: Dict[int, bool] = {}
        self._delegate: Optional[Solver] = None
        self._delegate_fed = 0       # clauses already forwarded
        self._delegate_seeded = 0    # seeded clauses already imported
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_solve_calls = 0

    # -- Solver-compatible surface -------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Problem clauses accumulated (mirrors ``Solver.num_clauses``)."""
        return len(self._clauses)

    def new_var(self) -> int:
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        lits = tuple(literals)
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            if abs(lit) > self._num_vars:
                self._num_vars = abs(lit)
        self._clauses.append(lits)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        if cnf.num_vars > self._num_vars:
            self._num_vars = cnf.num_vars
        for clause in cnf.clauses:
            self.add_clause(clause)
        return True

    def model(self) -> Dict[int, bool]:
        return dict(self._model)

    def model_lit(self, lit: int) -> bool:
        value = self._model.get(abs(lit))
        if value is None:
            raise KeyError(f"variable {abs(lit)} not in model")
        return value if lit > 0 else not value

    # -- Shared clause pool --------------------------------------------

    def shared_clauses(self) -> List[Tuple[int, ...]]:
        """The current pool, insertion-ordered (race-child injection)."""
        return list(self._shared.values())

    def persistable_clauses(self) -> List[Tuple[int, ...]]:
        """Pool clauses safe to replay into a future run.

        Only clauses over the *base* encoding's variables — those that
        existed at the first solve call — are portable: the base
        Tseitin encoding is a deterministic function of the netlist,
        while every later variable (DIP-constraint auxiliaries) depends
        on this run's query sequence and would alias an unrelated
        variable in another run.  Each surviving clause is implied by
        the base encoding plus oracle-consistency constraints, so
        importing it in any future run against the same netlist+oracle
        only prunes key pairs a future DIP would have eliminated anyway.
        """
        base = self._base_vars if self._base_vars is not None else (
            self._num_vars
        )
        return [
            clause for clause in self._shared.values()
            if all(abs(lit) <= base for lit in clause)
        ]

    def seed_shared_clauses(
        self, clauses: Iterable[Sequence[int]]
    ) -> int:
        """Warm-start the pool (e.g. from a previous run's cache).

        Seeded clauses reach the race children through the shared pool
        *and* the incremental delegate (unlike within-run harvests,
        which stay children-only): a previous run's persisted pool is
        distilled oracle knowledge over stable base variables, worth
        perturbing the shadow's serial-identical search for.
        """
        clauses = [tuple(clause) for clause in clauses if clause]
        # Seeding must NOT bump num_vars: the pool references the base
        # encoding the attack is *about to build* against this solver,
        # and encoders allocate fresh variables above num_vars — a bump
        # here would shift the new encoding past the pool, silently
        # turning every seeded clause into noise over orphaned
        # variables.
        added = self._absorb(clauses, bump_vars=False)
        self._seeded.extend(clauses)
        self.stats.clauses_seeded += added
        _metrics.inc("sat.portfolio.clauses_seeded", added)
        return added

    def _absorb(
        self, clauses: Iterable[Sequence[int]], bump_vars: bool = True
    ) -> int:
        added = 0
        for clause in clauses:
            lits = tuple(clause)
            if not lits or len(lits) > self.share_max_length:
                continue
            key = tuple(sorted(lits))
            if key in self._shared:
                continue
            self._shared[key] = lits
            if bump_vars:
                for lit in lits:
                    if abs(lit) > self._num_vars:
                        self._num_vars = abs(lit)
            added += 1
        while len(self._shared) > self.shared_limit:
            self._shared.pop(next(iter(self._shared)))
        self.stats.shared_pool = len(self._shared)
        return added

    # -- Solving -------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        self.num_solve_calls += 1
        if self._base_vars is None:
            # Everything added before the first solve is the base
            # encoding — deterministic per netlist, hence the portable
            # variable range for persisted pools.
            self._base_vars = self._num_vars
        with trace_span(
            "sat.portfolio.solve", configs=len(self.configs),
            clauses=len(self._clauses), shared=len(self._shared),
            assumptions=len(assumptions),
        ) as span:
            if self.use_processes:
                outcome, winner = self._race(tuple(assumptions))
            else:
                outcome, winner = self._solve_inline(tuple(assumptions))
            span.annotate(result="SAT" if outcome.sat else "UNSAT",
                          winner=winner)
        self.num_conflicts += outcome.num_conflicts
        self.num_decisions += outcome.num_decisions
        self.num_propagations += outcome.num_propagations
        self.stats.wins[winner] = self.stats.wins.get(winner, 0) + 1
        before = len(self._shared)
        self._absorb(outcome.learned)
        exported = len(self._shared) - before
        self.stats.clauses_exported += exported
        _metrics.inc("sat.portfolio.clauses_exported", exported)
        self._model = outcome.model_dict() if outcome.sat else {}
        return outcome.sat

    def _prepare_delegate(self) -> Solver:
        """The persistent incremental delegate, fed up to date.

        New problem clauses are forwarded incrementally, so the
        delegate keeps the serial solver's warm-solver economics across
        calls.  The delegate deliberately does NOT import the
        within-run shared pool: it replays exactly the serial solver's
        clause stream, so its search is bit-identical to a lone
        :class:`Solver` — the floor the race can never fall below.
        (Measured on the miter workload, the race harvests help cold
        child solvers but perturb a warm incremental search for the
        worse; the children carry the pool, the shadow carries the
        state.)  *Seeded* warm-start clauses are the one exception:
        they are a previous run's distilled, base-variable-only oracle
        facts, and importing them is where a warm run beats a cold one.
        """
        if self._delegate is None:
            self._delegate = Solver(self.configs[0])
        delegate = self._delegate
        delegate._ensure_var(self._num_vars)
        for clause in self._clauses[self._delegate_fed:]:
            delegate.add_clause(clause)
        self._delegate_fed = len(self._clauses)
        if self._delegate_seeded < len(self._seeded):
            delegate.import_clauses(
                self._seeded[self._delegate_seeded:]
            )
            self._delegate_seeded = len(self._seeded)
        return delegate

    def _delegate_outcome(
        self, delegate: Solver, assumptions: Tuple[int, ...]
    ) -> SolveOutcome:
        """Solve on the delegate; counters are per-call deltas so they
        accumulate the same way a race winner's counters do."""
        before = (delegate.num_conflicts, delegate.num_decisions,
                  delegate.num_propagations)
        sat = delegate.solve(assumptions)
        model: Tuple[Tuple[int, bool], ...] = ()
        if sat:
            model = tuple(sorted(delegate.model().items()))
        return SolveOutcome(
            sat=sat,
            model=model,
            num_conflicts=delegate.num_conflicts - before[0],
            num_decisions=delegate.num_decisions - before[1],
            num_propagations=delegate.num_propagations - before[2],
            learned=tuple(
                delegate.export_learned(self.share_max_length)
            ),
        )

    def _solve_inline(
        self, assumptions: Tuple[int, ...]
    ) -> Tuple[SolveOutcome, int]:
        """Solve on the persistent delegate alone (no race)."""
        self.stats.inline_solves += 1
        _metrics.inc("sat.portfolio.inline_solves")
        delegate = self._prepare_delegate()
        return self._delegate_outcome(delegate, assumptions), -1

    def _race(
        self, assumptions: Tuple[int, ...]
    ) -> Tuple[SolveOutcome, int]:
        """Race the configurations in child processes *and* the
        persistent incremental delegate in this process (the shadow).

        The shadow polls the children's pipes between conflicts
        (:class:`~repro.sat.solver.SolverInterrupted`) and yields when
        one answers first; children are cold per race, the shadow
        carries learned clauses and VSIDS state across the whole
        attack, so the race's wall time is bounded by the *serial*
        solver's — child diversity is pure upside.  Winner index -1
        is the shadow.  Falls back to the plain inline path if
        processes cannot be spawned here (e.g. a daemonized worker).
        """
        import multiprocessing
        from multiprocessing.connection import wait as mp_wait

        from .solver import SolverInterrupted

        try:
            ctx = multiprocessing.get_context(self.mp_start_method)
        except ValueError:
            ctx = multiprocessing.get_context()
        shared = self.shared_clauses()
        children = []
        try:
            for index, config in enumerate(self.configs):
                recv, send = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_race_child,
                    args=(send, index, self._clauses, assumptions, config,
                          shared, self.share_max_length, self._num_vars,
                          self.deadline),
                )
                process.start()
                send.close()
                children.append((process, recv))
        except (OSError, ValueError, AssertionError, RuntimeError):
            for process, recv in children:
                _terminate(process)
                recv.close()
            self.stats.fallbacks += 1
            _metrics.inc("sat.portfolio.fallbacks")
            return self._solve_inline(assumptions)

        self.stats.races += 1
        _metrics.inc("sat.portfolio.races")
        pending: Dict[Any, Tuple[Any, int]] = {
            recv: (process, index)
            for index, (process, recv) in enumerate(children)
        }
        delegate = self._prepare_delegate()
        errors: List[str] = []
        timeouts = 0
        try:
            while True:
                delegate.interrupt = (
                    (lambda: bool(mp_wait(list(pending), timeout=0)))
                    if pending else None
                )
                try:
                    outcome = self._delegate_outcome(delegate, assumptions)
                except SolverInterrupted:
                    outcome = None
                finally:
                    delegate.interrupt = None
                if outcome is not None:  # the shadow finished first
                    self.stats.cancelled += len(pending)
                    _metrics.inc("sat.portfolio.cancelled", len(pending))
                    _metrics.inc("sat.portfolio.wins")
                    return outcome, -1
                for conn in mp_wait(list(pending), timeout=0):
                    process, index = pending.pop(conn)
                    try:
                        status, _idx, payload = conn.recv()
                    except (EOFError, OSError):
                        errors.append(
                            f"config {index} died without an answer"
                        )
                        continue
                    if status == "ok":
                        self.stats.cancelled += len(pending)
                        _metrics.inc(
                            "sat.portfolio.cancelled", len(pending)
                        )
                        _metrics.inc("sat.portfolio.wins")
                        return payload, index
                    if status == "timeout":
                        timeouts += 1
                    else:
                        errors.append(f"config {index}: {payload}")
                # Dead/timed-out children just drop out of `pending`;
                # the loop re-enters the shadow, which runs unpolled to
                # completion once no child remains.
        finally:
            self.stats.member_timeouts += timeouts
            _metrics.inc("sat.portfolio.member_timeouts", timeouts)
            for process, recv in children:
                _terminate(process)
                recv.close()


def _terminate(process) -> None:
    if process.is_alive():
        process.terminate()
    process.join(timeout=2.0)
    if process.is_alive():  # pragma: no cover - stuck-child backstop
        process.kill()
        process.join(timeout=2.0)


# ----------------------------------------------------------------------
# Warm-start persistence (the campaign's content-addressed cache)
# ----------------------------------------------------------------------

def oracle_fingerprint(oracle, patterns: int = 8) -> str:
    """Content fingerprint of an activated chip's I/O behaviour.

    Queries *oracle* on a fixed pseudorandom pattern set and hashes the
    responses: two oracles that agree on the probe set share warm-start
    pools, two that differ (a different correct key, a different
    design) do not.  The probes count as real oracle queries — the
    attacker did spend them.
    """
    import random as _random

    from ..campaign.cache import content_key

    rng = _random.Random(0xF1DE1)
    inputs = sorted(oracle.inputs)
    probes = [
        {net: rng.randint(0, 1) for net in inputs}
        for _ in range(patterns)
    ]
    responses = oracle.query_batch(probes)
    return content_key(
        kind="oracle-fingerprint",
        inputs=inputs,
        outputs=sorted(oracle.outputs),
        responses=[sorted(response.items()) for response in responses],
    )


def shared_clause_key(
    circuit, attack: str, fingerprint: Optional[str] = None
) -> str:
    """Cache key of one (attacked netlist, attack family, oracle) pool."""
    from io import StringIO

    from ..campaign.cache import content_key
    from ..netlist.verilog_io import write_verilog

    buffer = StringIO()
    write_verilog(circuit, buffer)
    return content_key(
        kind="sat-shared-clauses",
        attack=attack,
        netlist=buffer.getvalue(),
        oracle=fingerprint,
    )


def load_shared_clauses(cache, key: str) -> List[Tuple[int, ...]]:
    """Pool persisted by a previous run, or ``[]``."""
    payload = cache.get(key)
    if not payload:
        return []
    return [tuple(clause) for clause in payload.get("clauses", [])]


def store_shared_clauses(
    cache, key: str, clauses: Sequence[Sequence[int]],
    limit: int = DEFAULT_SHARED_LIMIT,
) -> int:
    """Persist (up to *limit* of) the pool for the next run."""
    kept = [list(clause) for clause in clauses][:limit]
    cache.put(key, {"clauses": kept})
    return len(kept)
