"""Tseitin encoding: netlists to CNF.

This is the bridge the SAT attack [11] uses: it turns the combinational
view of a circuit into clauses over one variable per net.  Multiple
copies of the same circuit can share a :class:`CNF` (the attack's miter
uses two copies with shared primary inputs but independent keys), so the
encoder is instantiated per copy and exposes the variable map.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..netlist.circuit import Circuit, Gate, NetlistError
from ..netlist.compiled import compile_circuit
from .cnf import CNF

__all__ = ["CircuitEncoder", "encode_circuit", "encode_gate_function"]


def encode_gate_function(
    cnf: CNF,
    function: str,
    out: int,
    operands: "list[int]",
    truth_table=None,
) -> None:
    """Clauses for ``out <-> function(operands)`` over explicit variables.

    Shared by the plain circuit encoder and the time-expanded (TCF)
    encoder, which wires the same cell functions between variables of
    different time ticks.
    """
    if function == "BUF":
        cnf.add_equal(out, operands[0])
    elif function == "INV":
        cnf.add_equal(out, -operands[0])
    elif function == "AND2":
        cnf.add_and(out, operands)
    elif function == "NAND2":
        cnf.add_and(-out, operands)
    elif function == "OR2":
        cnf.add_or(out, operands)
    elif function == "NOR2":
        cnf.add_or(-out, operands)
    elif function == "XOR2":
        cnf.add_xor(out, operands[0], operands[1])
    elif function == "XNOR2":
        cnf.add_xor(-out, operands[0], operands[1])
    elif function == "MUX2":
        a, b, sel = operands
        cnf.add_mux(out, a, b, sel)
    elif function == "MUX4":
        a, b, c, d, s0, s1 = operands
        low = cnf.new_var()
        high = cnf.new_var()
        cnf.add_mux(low, a, b, s0)
        cnf.add_mux(high, c, d, s0)
        cnf.add_mux(out, low, high, s1)
    elif function == "TIE0":
        cnf.add_clause([-out])
    elif function == "TIE1":
        cnf.add_clause([out])
    elif function == "LUT":
        if truth_table is None:
            raise NetlistError("LUT encoding needs a truth table")
        for index, bit in enumerate(truth_table):
            selector = [
                operands[i] if (index >> i) & 1 else -operands[i]
                for i in range(len(operands))
            ]
            cnf.add_clause([-lit for lit in selector] + [out if bit else -out])
    else:
        raise NetlistError(f"cannot encode function {function!r}")


class CircuitEncoder:
    """Encodes one combinational copy of a circuit into a shared CNF.

    Args:
        cnf: Formula to append clauses/variables to.
        circuit: Circuit to encode.  It must be purely combinational
            (run it through
            :func:`repro.netlist.transform.extract_combinational` first
            if it has flip-flops).
        net_vars: Pre-assigned variables for some nets (used to share
            primary inputs between miter copies).  Remaining nets get
            fresh variables.
    """

    def __init__(
        self,
        cnf: CNF,
        circuit: Circuit,
        net_vars: Optional[Mapping[str, int]] = None,
    ) -> None:
        if circuit.flip_flops():
            raise NetlistError(
                f"circuit {circuit.name!r} is sequential; "
                "extract the combinational core before encoding"
            )
        self.cnf = cnf
        self.circuit = circuit
        self.var_of: Dict[str, int] = dict(net_vars or {})
        self._encode()

    def _var(self, net: str) -> int:
        var = self.var_of.get(net)
        if var is None:
            var = self.cnf.new_var()
            self.var_of[net] = var
        return var

    def _encode(self) -> None:
        # Walk the compiled schedule: same gate order as
        # ``topological_order()`` and same pin order within each gate,
        # so variable numbering is identical to the object-graph walk.
        compiled = compile_circuit(self.circuit)
        for net in self.circuit.inputs + self.circuit.key_inputs:
            self._var(net)
        for i in range(compiled.num_gates):
            out = self._var(compiled.out_names[i])
            operands = [
                self._var(net) for net in compiled.fanin_name_tuples[i]
            ]
            encode_gate_function(
                self.cnf, compiled.functions[i], out, operands,
                compiled.truth_tables[i],
            )
        for net in self.circuit.outputs:
            self._var(net)

    def output_vars(self) -> Dict[str, int]:
        return {net: self.var_of[net] for net in self.circuit.outputs}

    def input_vars(self) -> Dict[str, int]:
        return {net: self.var_of[net] for net in self.circuit.inputs}

    def key_vars(self) -> Dict[str, int]:
        return {net: self.var_of[net] for net in self.circuit.key_inputs}


def encode_circuit(
    circuit: Circuit, net_vars: Optional[Mapping[str, int]] = None
) -> CircuitEncoder:
    """Encode *circuit* into a fresh :class:`CNF`; returns the encoder."""
    return CircuitEncoder(CNF(), circuit, net_vars)
