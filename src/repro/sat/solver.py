"""A CDCL SAT solver.

The SAT attack [11] needs an incremental SAT solver, and no solver
package is installable in this offline environment, so the repo carries
its own: a MiniSat-style conflict-driven clause-learning solver with

* two-watched-literal unit propagation,
* first-UIP conflict analysis with reason-side clause minimization,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts, and
* periodic learned-clause database reduction.

The public interface speaks DIMACS-style signed literals (``+v`` /
``-v``) and supports incremental use: clauses may be added between
:meth:`Solver.solve` calls, and solving under *assumptions* is
supported (the SAT attack uses both).

This is a general-purpose solver; it is deliberately independent of the
netlist layer (see :mod:`repro.sat.tseitin` for the bridge).
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import context as _obs
from ..obs.spans import trace_span
from .cnf import CNF

__all__ = ["Solver", "SolverConfig", "SolverInterrupted", "luby"]

_UNASSIGNED = 2  # internal truth values: 1 true, 0 false, 2 unassigned


class SolverInterrupted(Exception):
    """Raised out of :meth:`Solver.solve` when the solver's
    ``interrupt`` callback returns True.  The solver is left in a
    consistent state (backtracked to level 0, learned clauses and
    activities retained), so a later ``solve`` call resumes the search
    with everything the interrupted run learned."""

_RESTART_POLICIES = ("luby", "geometric")
_POLARITY_MODES = ("saved", "false", "true", "random")


@dataclass(frozen=True)
class SolverConfig:
    """One deterministic CDCL configuration.

    The defaults reproduce the solver's historical behaviour exactly
    (``Solver()`` and ``Solver(SolverConfig())`` run the same search),
    which is what makes the configuration space safe to race: every
    portfolio member is this solver with different heuristics, not a
    different solver.  Identical configs on identical clause streams
    take identical decisions — all randomness flows from ``seed``
    through one private ``random.Random`` — so runs reproduce
    bit-for-bit across processes.

    * ``var_decay`` / ``clause_decay`` — VSIDS activity decay factors
      (each conflict multiplies the bump increment by ``1/decay``).
    * ``restart`` — ``"luby"`` (the Luby sequence scaled by
      ``restart_base``) or ``"geometric"`` (``restart_base *
      restart_factor**k``).
    * ``polarity`` — branch-phase choice: ``"saved"`` (phase saving,
      the default), ``"false"``/``"true"`` (fixed), or ``"random"``.
    * ``random_decision_freq`` — probability of branching on a random
      variable instead of the VSIDS maximum (MiniSat's diversification
      knob; one probe, falling back to the activity order).
    * ``seed`` — seed for the solver's private RNG; only drawn from
      when ``polarity="random"`` or ``random_decision_freq > 0``.
    """

    var_decay: float = 0.95
    clause_decay: float = 0.999
    restart: str = "luby"
    restart_base: int = 100
    restart_factor: float = 1.5
    polarity: str = "saved"
    random_decision_freq: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.var_decay <= 1.0:
            raise ValueError(f"var_decay {self.var_decay} outside (0, 1]")
        if not 0.0 < self.clause_decay <= 1.0:
            raise ValueError(
                f"clause_decay {self.clause_decay} outside (0, 1]"
            )
        if self.restart not in _RESTART_POLICIES:
            raise ValueError(
                f"restart {self.restart!r} not in {_RESTART_POLICIES}"
            )
        if self.restart_base < 1:
            raise ValueError("restart_base must be positive")
        if self.restart_factor <= 1.0:
            raise ValueError("restart_factor must exceed 1.0")
        if self.polarity not in _POLARITY_MODES:
            raise ValueError(
                f"polarity {self.polarity!r} not in {_POLARITY_MODES}"
            )
        if not 0.0 <= self.random_decision_freq <= 1.0:
            raise ValueError("random_decision_freq outside [0, 1]")

    def describe(self) -> str:
        return (f"decay={self.var_decay}/{self.clause_decay} "
                f"restart={self.restart}({self.restart_base}) "
                f"polarity={self.polarity} "
                f"rnd={self.random_decision_freq} seed={self.seed}")


def luby(index: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    *index* is 1-based (``luby(1) == 1``).
    """
    if index < 1:
        raise ValueError("luby index is 1-based")
    x = index - 1
    size, level = 1, 0
    while size < x + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        level -= 1
        x %= size
    return 1 << level


class _Clause:
    """A clause; the first two literals are the watched ones."""

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class Solver:
    """Incremental CDCL solver over DIMACS-style integer literals."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config if config is not None else SolverConfig()
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        #: per internal literal: list of (blocker, clause) watch entries;
        #: a true blocker lets propagation skip the clause entirely
        self._watches: List[List[Tuple[int, _Clause]]] = []
        self._assigns: List[int] = []  # per var: 0/1/2
        self._polarity: List[int] = []  # phase saving, per var
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._activity: List[float] = []
        self._var_inc = 1.0
        self._var_decay = 1.0 / self.config.var_decay
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / self.config.clause_decay
        self._rng = random.Random(self.config.seed)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order: List[Tuple[float, int]] = []  # lazy max-heap of (-act, var)
        self._unsat = False
        self._model: Dict[int, bool] = {}
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_learned = 0  # clauses ever learned (survives _reduce_db)
        self.num_imported = 0  # clauses accepted via import_clauses
        self.num_solve_calls = 0
        #: optional zero-arg callback polled every few hundred conflicts
        #: (and periodically between conflicts); returning True aborts
        #: the current solve with :class:`SolverInterrupted`.  The
        #: portfolio's shadow race uses it to yield to a faster child.
        self.interrupt = None

    # ------------------------------------------------------------------
    # Variables and literals
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return the next variable (1-based)."""
        self._num_vars += 1
        self._assigns.append(_UNASSIGNED)
        self._polarity.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._order, (0.0, self._num_vars - 1))
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Problem (non-learned) clauses currently in the database."""
        return len(self._clauses)

    @property
    def num_learnt_clauses(self) -> int:
        """Learned clauses currently retained."""
        return len(self._learnts)

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    @staticmethod
    def _to_internal(lit: int) -> int:
        var = abs(lit) - 1
        return 2 * var + (1 if lit < 0 else 0)

    @staticmethod
    def _to_external(ilit: int) -> int:
        var = (ilit >> 1) + 1
        return -var if ilit & 1 else var

    def _lit_value(self, ilit: int) -> int:
        value = self._assigns[ilit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (ilit & 1)

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if self._unsat:
            return False
        self._cancel_until(0)
        seen = set()
        lits: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self._ensure_var(abs(lit))
            ilit = self._to_internal(lit)
            if ilit ^ 1 in seen:
                return True  # tautology
            if ilit in seen:
                continue
            value = self._lit_value(ilit)
            if value == 1:
                return True  # satisfied at level 0
            if value == 0:
                continue  # falsified at level 0: drop literal
            seen.add(ilit)
            lits.append(ilit)
        if not lits:
            self._unsat = True
            return False
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        clause = _Clause(lits, learnt=False)
        self._clauses.append(clause)
        self._watches[lits[0]].append((lits[1], clause))
        self._watches[lits[1]].append((lits[0], clause))
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        self._ensure_var(cnf.num_vars)
        ok = True
        for clause in cnf.clauses:
            ok = self.add_clause(clause) and ok
        return ok

    # ------------------------------------------------------------------
    # Assignment trail
    # ------------------------------------------------------------------

    def _enqueue(self, ilit: int, reason: Optional[_Clause]) -> bool:
        value = self._lit_value(ilit)
        if value != _UNASSIGNED:
            return value == 1
        var = ilit >> 1
        self._assigns[var] = 1 - (ilit & 1)
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(ilit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for ilit in reversed(self._trail[bound:]):
            var = ilit >> 1
            self._polarity[var] = self._assigns[var]
            self._assigns[var] = _UNASSIGNED
            self._reason[var] = None
            # Lazy heap: re-push with the *current* activity.  Duplicate
            # entries are fine (stale ones are skipped at pop time) and
            # keeping priorities fresh is what makes VSIDS effective.
            heapq.heappush(self._order, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        # The solver's hot loop: local aliases and inlined literal
        # valuation (value-of-lit == assigns[var] ^ sign, or 2 when
        # unassigned) buy a large constant factor in pure Python.
        assigns = self._assigns
        watches = self._watches
        trail = self._trail
        level = self._level
        reason = self._reason
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            self.num_propagations += 1
            false_lit = p ^ 1
            watchlist = watches[false_lit]
            i = j = 0
            n = len(watchlist)
            while i < n:
                entry = watchlist[i]
                i += 1
                blocker = entry[0]
                bvalue = assigns[blocker >> 1]
                if bvalue != 2 and bvalue ^ (blocker & 1) == 1:
                    watchlist[j] = entry  # satisfied via the blocker
                    j += 1
                    continue
                clause = entry[1]
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                value = assigns[first >> 1]
                if value != 2 and value ^ (first & 1) == 1:
                    watchlist[j] = (first, clause)
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    lit_k = lits[k]
                    value_k = assigns[lit_k >> 1]
                    if value_k == 2 or value_k ^ (lit_k & 1) != 0:
                        lits[1] = lit_k
                        lits[k] = false_lit
                        watches[lit_k].append((first, clause))
                        moved = True
                        break
                if moved:
                    continue
                watchlist[j] = (first, clause)
                j += 1
                if value != 2:  # first is false: conflict
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    del watchlist[j:]
                    self._qhead = len(trail)
                    return clause
                # Unit: enqueue `first` (inlined _enqueue fast path).
                var = first >> 1
                assigns[var] = 1 - (first & 1)
                level[var] = len(self._trail_lim)
                reason[var] = clause
                trail.append(first)
            del watchlist[j:]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        learnt: List[int] = [0]  # slot 0 for the asserting literal
        seen = [False] * self._num_vars
        counter = 0
        p: Optional[int] = None
        index = len(self._trail) - 1
        backtrack_level = 0
        reason = conflict

        while True:
            self._bump_clause(reason)
            for q in reason.lits:
                if p is not None and q == p:
                    continue
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= self._decision_level():
                        counter += 1
                    else:
                        learnt.append(q)
                        backtrack_level = max(backtrack_level, self._level[var])
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            index -= 1
            seen[p >> 1] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[p >> 1]
            assert reason is not None
        learnt[0] = p ^ 1

        # Reason-side minimization: drop literals implied by the rest.
        marked = set(q >> 1 for q in learnt)
        kept = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reason[q >> 1]
            if reason is None:
                kept.append(q)
                continue
            if all(
                (r >> 1) in marked or self._level[r >> 1] == 0
                for r in reason.lits
                if r != (q ^ 1)
            ):
                continue  # redundant
            kept.append(q)
        learnt = kept
        if len(learnt) > 1:
            backtrack_level = max(self._level[q >> 1] for q in learnt[1:])
        else:
            backtrack_level = 0
        return learnt, backtrack_level

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for i in range(self._num_vars):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learnt:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _record_learnt(self, lits: List[int]) -> None:
        self.num_learned += 1
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return
        # Watch the asserting literal and a literal from the backtrack level.
        best = max(range(1, len(lits)), key=lambda i: self._level[lits[i] >> 1])
        lits[1], lits[best] = lits[best], lits[1]
        clause = _Clause(lits, learnt=True)
        clause.activity = self._cla_inc
        self._learnts.append(clause)
        self._watches[lits[0]].append((lits[1], clause))
        self._watches[lits[1]].append((lits[0], clause))
        self._enqueue(lits[0], clause)

    def _reduce_db(self) -> None:
        """Throw away the less active half of the learned clauses."""
        self._learnts.sort(key=lambda c: c.activity)
        locked = {self._reason[ilit >> 1] for ilit in self._trail}
        keep: List[_Clause] = []
        drop = set()
        half = len(self._learnts) // 2
        for i, clause in enumerate(self._learnts):
            if i < half and clause not in locked and len(clause.lits) > 2:
                drop.add(id(clause))
            else:
                keep.append(clause)
        if not drop:
            return
        self._learnts = keep
        for watchlist in self._watches:
            watchlist[:] = [
                entry for entry in watchlist if id(entry[1]) not in drop
            ]

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> Optional[int]:
        if (
            self.config.random_decision_freq > 0.0
            and self._num_vars
            and self._rng.random() < self.config.random_decision_freq
        ):
            # One random probe (MiniSat's scheme): hit an unassigned
            # variable and branch on it; otherwise fall through to the
            # activity order.  Its heap entry stays put — stale entries
            # are already skipped at pop time.
            var = self._rng.randrange(self._num_vars)
            if self._assigns[var] == _UNASSIGNED:
                return var
        while self._order:
            _neg_act, var = heapq.heappop(self._order)
            if self._assigns[var] == _UNASSIGNED:
                return var
        return None

    def _decide_phase(self, var: int) -> bool:
        """True to assign the branch variable True."""
        polarity = self.config.polarity
        if polarity == "saved":
            return self._polarity[var] == 1
        if polarity == "true":
            return True
        if polarity == "false":
            return False
        return self._rng.random() < 0.5

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def _restart_limit(self, index: int) -> int:
        """Conflicts allowed before restart *index* (1-based) fires."""
        config = self.config
        if config.restart == "geometric":
            return max(
                1,
                int(config.restart_base
                    * config.restart_factor ** (index - 1)),
            )
        return config.restart_base * luby(index)

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Solve the current formula under *assumptions*.

        Returns True (SAT; see :meth:`model`) or False (UNSAT under the
        assumptions).
        """
        self.num_solve_calls += 1
        if _obs.ACTIVE is None:  # observability off: zero-overhead path
            return self._solve(assumptions)
        return self._solve_observed(assumptions)

    def _solve_observed(self, assumptions: Sequence[int]) -> bool:
        """:meth:`_solve` wrapped in a span + per-call counter deltas."""
        before = (self.num_decisions, self.num_conflicts,
                  self.num_propagations, self.num_learned)
        t0 = time.perf_counter()
        with trace_span(
            "sat.solve", vars=self._num_vars, clauses=len(self._clauses),
            assumptions=len(assumptions),
        ) as span:
            sat = self._solve(assumptions)
            decisions, conflicts, propagations, learned = (
                self.num_decisions - before[0],
                self.num_conflicts - before[1],
                self.num_propagations - before[2],
                self.num_learned - before[3],
            )
            span.annotate(result="SAT" if sat else "UNSAT",
                          decisions=decisions, conflicts=conflicts,
                          propagations=propagations, learned=learned)
        session = _obs.ACTIVE
        if session is not None:
            registry = session.registry
            registry.counter("sat.solver.calls").inc()
            registry.counter("sat.solver.decisions").inc(decisions)
            registry.counter("sat.solver.conflicts").inc(conflicts)
            registry.counter("sat.solver.propagations").inc(propagations)
            registry.counter("sat.solver.learned_clauses").inc(learned)
            registry.gauge("sat.solver.clauses").set(len(self._clauses))
            registry.histogram("sat.solve.seconds").observe(
                time.perf_counter() - t0
            )
        return sat

    def _solve(self, assumptions: Sequence[int] = ()) -> bool:
        if self._unsat:
            return False
        self._cancel_until(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        internal_assumptions = []
        for lit in assumptions:
            self._ensure_var(abs(lit))
            internal_assumptions.append(self._to_internal(lit))

        restart_index = 1
        conflicts_until_restart = self._restart_limit(restart_index)
        max_learnts = max(1000, len(self._clauses) // 3)
        conflict_count = 0
        root_level = 0  # decision levels consumed by the assumption prefix

        interrupt = self.interrupt
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                conflict_count += 1
                if (
                    interrupt is not None
                    and self.num_conflicts % 128 == 0
                    and interrupt()
                ):
                    self._cancel_until(0)
                    raise SolverInterrupted
                if self._decision_level() <= root_level:
                    # Conflict inside/below the assumption prefix: UNSAT.
                    self._cancel_until(0)
                    return False
                learnt, backtrack_level = self._analyze(conflict)
                backtrack_level = max(backtrack_level, root_level)
                self._cancel_until(backtrack_level)
                self._record_learnt(learnt)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                if len(self._learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                if conflict_count >= conflicts_until_restart:
                    conflict_count = 0
                    restart_index += 1
                    conflicts_until_restart = self._restart_limit(
                        restart_index
                    )
                    self._cancel_until(root_level)
                continue

            # Assumption prefix: one decision level per assumption.
            if self._decision_level() < len(internal_assumptions):
                ilit = internal_assumptions[self._decision_level()]
                value = self._lit_value(ilit)
                if value == 0:
                    self._cancel_until(0)
                    return False
                self._trail_lim.append(len(self._trail))
                root_level = self._decision_level()
                if value == _UNASSIGNED:
                    self._enqueue(ilit, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                self._model = {
                    v + 1: self._assigns[v] == 1 for v in range(self._num_vars)
                }
                self._cancel_until(0)
                return True
            self.num_decisions += 1
            if (
                interrupt is not None
                and self.num_decisions % 4096 == 0
                and interrupt()
            ):
                self._cancel_until(0)
                raise SolverInterrupted
            self._trail_lim.append(len(self._trail))
            ilit = 2 * var + (0 if self._decide_phase(var) else 1)
            self._enqueue(ilit, None)

    # ------------------------------------------------------------------
    # Clause sharing (the portfolio's transport)
    # ------------------------------------------------------------------

    def export_learned(self, max_length: int = 8) -> List[Tuple[int, ...]]:
        """Short clauses *implied by the problem clauses*, external form.

        Exports the level-0 trail (facts unit-propagation has proven)
        as unit clauses, plus every retained learned clause of length
        <= *max_length*.  Soundness: learned clauses come from
        resolution over problem and previously learned clauses only —
        assumption literals enter a learned clause as literals, never
        as resolved-away facts, and level-0 literals (the only ones
        dropped during minimization) are themselves formula-implied.
        So every exported clause is a logical consequence of the
        clauses added so far and may be injected into any solver
        working on a superset of this formula.
        """
        exported: List[Tuple[int, ...]] = []
        bound = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for ilit in self._trail[:bound]:
            exported.append((self._to_external(ilit),))
        for clause in self._learnts:
            if len(clause.lits) <= max_length:
                exported.append(
                    tuple(self._to_external(lit) for lit in clause.lits)
                )
        return exported

    def import_clauses(
        self, clauses: Iterable[Sequence[int]]
    ) -> int:
        """Add clauses exported from another solver; returns the count.

        Imported clauses enter the database as problem clauses (they
        are implied, so they can never flip a satisfiable formula to
        UNSAT — the certification suite checks exactly this), which
        also exempts them from learned-clause reduction: a clause
        worth shipping between solvers is worth keeping.
        """
        count = 0
        for clause in clauses:
            self.add_clause(clause)
            count += 1
        self.num_imported += count
        return count

    def model(self) -> Dict[int, bool]:
        """Variable -> truth value of the last satisfying assignment."""
        return dict(self._model)

    def model_lit(self, lit: int) -> bool:
        value = self._model.get(abs(lit))
        if value is None:
            raise KeyError(f"variable {abs(lit)} not in model")
        return value if lit > 0 else not value
