"""SAT substrate: CNF, CDCL solver, and circuit (Tseitin) encoding."""

from .cnf import CNF
from .solver import Solver, luby
from .tseitin import CircuitEncoder, encode_circuit

__all__ = ["CNF", "Solver", "luby", "CircuitEncoder", "encode_circuit"]
