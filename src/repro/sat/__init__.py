"""SAT substrate: CNF, CDCL solver, portfolio racing, Tseitin encoding."""

from .cnf import CNF
from .portfolio import PortfolioSolver, default_portfolio
from .solver import Solver, SolverConfig, luby
from .tseitin import CircuitEncoder, encode_circuit

__all__ = [
    "CNF", "Solver", "SolverConfig", "PortfolioSolver",
    "default_portfolio", "luby", "CircuitEncoder", "encode_circuit",
]
