#!/usr/bin/env python3
"""Attack lab: every attack in the paper against every defense.

A matrix run on the s1238 stand-in:

* removal attack (Sec. V-C) vs SARLock / Anti-SAT / XOR / GK,
* enhanced removal + SAT (Sec. V-D) vs plain GK and withheld GK,
* TCF timed SAT (Sec. V-B) vs a delay key and vs a glitch key,
* scan measurement (Sec. VI) vs GK-only and the GK+XOR hybrid,
* AppSAT [10] vs the XOR+SARLock compound and vs GK,
* sequential unrolling SAT (no scan) vs XOR and vs GK.

Run:  python examples/attack_lab.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.attacks import (
    CombinationalOracle,
    enhanced_removal_attack,
    removal_attack,
    scan_attack,
    tcf_attack,
)
from repro.bench import iwls_benchmark
from repro.core import GkLock, expose_gk_keys, withhold_gk
from repro.core.gk import build_gk_demo
from repro.locking import AntiSat, HybridGkXor, SarLock, XorLock
from repro.locking.base import LockedCircuit
from repro.netlist import Builder
from repro.synth import insert_delay_chain


def verdict(broken):
    return "BROKEN" if broken else "holds"


def main():
    inst = iwls_benchmark("s1238")
    circuit, clock = inst.circuit, inst.clock
    oracle = CombinationalOracle(circuit)
    rng = random.Random(5)
    print(f"target: {circuit}\n")

    # ------------------------------------------------------------------
    print("removal attack (signal-probability skew, Sec. V-C)")
    for label, locked in (
        ("SARLock", SarLock().lock(circuit, 8, rng)),
        ("Anti-SAT", AntiSat().lock(circuit, 8, rng)),
        ("XOR locking", XorLock().lock(circuit, 8, rng)),
    ):
        result = removal_attack(locked, samples=300, rng=random.Random(6))
        print(f"  vs {label:<12} -> {verdict(result.success)}")
    gk = GkLock(clock).lock(circuit, 8, random.Random(42))
    gk_view = LockedCircuit(circuit=expose_gk_keys(gk), original=circuit,
                            key={}, scheme="gk")
    result = removal_attack(gk_view, samples=300, rng=random.Random(6))
    print(f"  vs {'GK':<12} -> {verdict(result.success)}")

    # ------------------------------------------------------------------
    print("\nenhanced removal attack (locate -> remodel -> SAT, Sec. V-D)")
    plain = enhanced_removal_attack(expose_gk_keys(gk), oracle)
    print(f"  vs plain GK      -> {verdict(plain.success)} "
          f"(located {len(plain.located)} GKs, "
          f"behaviours {plain.recovered_behaviour})")
    shielded = GkLock(clock, margin=0.35).lock(circuit, 8, random.Random(43))
    for record in shielded.metadata["gks"]:
        withhold_gk(shielded.circuit, record, clock.period)
    hidden = enhanced_removal_attack(expose_gk_keys(shielded), oracle)
    print(f"  vs withheld GK   -> {verdict(hidden.success)} "
          f"({len(hidden.unresolvable_muxes)} opaque LUT structures)")

    # ------------------------------------------------------------------
    print("\nTCF timed SAT attack (Sec. V-B)")
    b = Builder("dlock")
    a = b.input("a")
    k = b.key_input("k")
    chain = insert_delay_chain(b.circuit, a, 0.5, prefix="slow")
    b.po(b.mux2(a, chain.output_net, k), "y")
    delay_locked = b.circuit
    tcf_delay = tcf_attack(delay_locked, delay_locked, {"k": 0}, 0.3)
    print(f"  vs delay key (TDK-style) -> {verdict(tcf_delay.completed and tcf_delay.key == {'k': 0})} "
          f"({tcf_delay.iterations} timed DIPs)")
    gk_demo = build_gk_demo(0.2, 0.3)
    view = gk_demo.clone("view")
    view.inputs.remove("key")
    view.key_inputs.append("key")
    ob = Builder("orc")
    x = ob.input("x")
    ob.po(ob.buf(x), "y")
    tcf_gk = tcf_attack(view, ob.circuit, None, 0.6, max_iterations=8)
    print(f"  vs glitch key            -> "
          f"{verdict(not tcf_gk.unsat_at_first_iteration)} "
          f"(no DIP: a static key variable cannot glitch)")

    # ------------------------------------------------------------------
    print("\nscan-based measurement (Sec. VI's BIST weakness)")
    gk_scan = scan_attack(
        gk, expose_gk_keys(gk), clock.period,
        {r.gk.ff: r.keygen.key_out for r in gk.metadata["gks"]},
        trials=3, cycles=6,
    )
    print(f"  vs GK only  -> {verdict(gk_scan.success)} "
          f"({gk_scan.resolved} GK behaviours measured)")
    hybrid = HybridGkXor(clock).lock(circuit, 8, random.Random(11))
    hyb_scan = scan_attack(
        hybrid, expose_gk_keys(hybrid), clock.period,
        {r.gk.ff: r.keygen.key_out for r in hybrid.metadata["gks"]},
        trials=3, cycles=6,
    )
    print(f"  vs GK + XOR -> {verdict(hyb_scan.success)} "
          f"({len(hyb_scan.ambiguous)} paths confounded by XOR key bits)")

    # ------------------------------------------------------------------
    print("\nAppSAT approximate attack (paper Sec. I / [10])")
    from repro.attacks import appsat_attack, verify_key_against_oracle
    from repro.locking import CompoundLock

    compound = CompoundLock([XorLock(), SarLock()]).lock(
        circuit, 12, random.Random(8)
    )
    app = appsat_attack(compound.circuit, oracle, rng=random.Random(9))
    acc = (verify_key_against_oracle(compound.circuit, oracle, app.key,
                                     samples=48)
           if app.key else 0.0)
    print(f"  vs XOR+SARLock compound -> "
          f"{verdict(app.approximately_correct and acc >= 0.95)} "
          f"(error estimate {app.estimated_error:.3f}, accuracy {acc:.2f})")
    gk_app = appsat_attack(expose_gk_keys(gk), oracle,
                           rng=random.Random(10), max_rounds=2,
                           queries_per_round=8)
    gk_acc = (verify_key_against_oracle(expose_gk_keys(gk), oracle,
                                        gk_app.key, samples=24)
              if gk_app.key else 0.0)
    print(f"  vs GK                   -> {verdict(gk_acc > 0.9)} "
          f"(0 DIPs, best candidate accuracy {gk_acc:.2f})")

    # ------------------------------------------------------------------
    print("\nsequential unrolling SAT attack (no scan access)")
    from repro.attacks import sequential_sat_attack

    seq_xor = XorLock().lock(circuit, 4, random.Random(31))
    res_xor = sequential_sat_attack(seq_xor.circuit, circuit, frames=3)
    print(f"  vs XOR locking -> "
          f"{verdict(res_xor.completed and res_xor.key == seq_xor.key)} "
          f"({res_xor.iterations} distinguishing sequences)")
    gk_small = GkLock(clock).lock(circuit, 4, random.Random(32))
    res_gk = sequential_sat_attack(expose_gk_keys(gk_small), circuit,
                                   frames=2)
    print(f"  vs GK          -> "
          f"{verdict(not res_gk.unsat_at_first_iteration)} "
          f"(UNSAT in every time frame)")


if __name__ == "__main__":
    main()
