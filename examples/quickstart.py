#!/usr/bin/env python3
"""Quickstart: lock a small sequential design with Glitch Key-gates.

Walks the whole story on a hand-built circuit:

1. build a sequential netlist with the fluent Builder API;
2. encrypt it with two GKs (GkLock — the paper's design flow);
3. show that the chip at the *timing* level matches the original under
   the correct key and corrupts under every wrong key;
4. show that the SAT attack finds no DIP (UNSAT at iteration 1).

Run:  python examples/quickstart.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.attacks import CombinationalOracle, sat_attack
from repro.core import GkLock, expose_gk_keys
from repro.locking import format_key
from repro.netlist import Builder, overhead
from repro.sim.harness import compare_with_original, random_input_sequence
from repro.sta import ClockSpec


def build_design():
    """A toy bus controller: 4 FFs of state over a few gates."""
    b = Builder("buslet")
    b.clock("clk")
    req, grant, data, mode = b.inputs("req", "grant", "data", "mode")
    s0, s1, s2, s3 = (b.circuit.new_net(f"s{i}") for i in range(4))
    b.dff(b.xor(req, s1), out=s0, name="state0")
    b.dff(b.nand2(grant, s0), out=s1, name="state1")
    b.dff(b.mux2(data, s2, mode), out=s2, name="hold")
    b.dff(b.or2(s2, s0), out=s3, name="flag")
    b.po(b.and2(s3, s1), "busy")
    b.po(s2, "q")
    b.circuit.validate()
    return b.circuit


def main():
    circuit = build_design()
    clock = ClockSpec(period=3.0)
    print(f"original design: {circuit}")

    # --- encrypt with 2 GKs (4 key bits) --------------------------------
    rng = random.Random(2019)
    locked = GkLock(clock).lock(circuit, 4, rng)
    keys = locked.circuit.key_inputs
    print(f"locked design  : {locked.circuit}")
    print(f"overhead       : {overhead(circuit, locked.circuit)}")
    print(f"correct key    : {format_key(locked.key, keys)}  "
          f"(each GK's 2 bits pick a KEYGEN mode)")
    for record in locked.metadata["gks"]:
        print(f"  GK at FF {record.gk.ff}: variant {record.gk.variant}, "
              f"glitch {record.gk.glitch_length_rise:.2f}ns, trigger "
              f"{record.trigger_correct_achieved:.2f}ns after each edge")

    # --- the chip on the bench ------------------------------------------
    seq = random_input_sequence(circuit, 20, random.Random(7))
    good = compare_with_original(circuit, locked.circuit, clock.period, seq,
                                 locked.key)
    print(f"\ncorrect key : equivalent={good.equivalent} "
          f"(0 of {good.cycles} cycles differ, "
          f"{good.violations} timing violations)")
    for trial in range(3):
        wrong = locked.random_wrong_key(random.Random(trial))
        bad = compare_with_original(circuit, locked.circuit, clock.period,
                                    seq, wrong)
        print(f"wrong key #{trial}: equivalent={bad.equivalent} "
              f"({bad.mismatch_count} corrupted observations)")

    # --- the SAT attack hits a wall --------------------------------------
    exposed = expose_gk_keys(locked)  # the attacker's preprocessing
    oracle = CombinationalOracle(circuit)
    result = sat_attack(exposed, oracle)
    print(f"\nSAT attack  : UNSAT at DIP iteration 1 = "
          f"{result.unsat_at_first_iteration} "
          f"({result.iterations} DIPs found, "
          f"{result.oracle_queries} oracle queries)")
    print("the key the attack 'certifies' describes the glitch-blind "
          "netlist, not the chip — the encryption stands.")


if __name__ == "__main__":
    main()
