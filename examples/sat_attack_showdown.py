#!/usr/bin/env python3
"""SAT-attack showdown: XOR locking vs SARLock vs the Glitch Key-gate.

Reproduces the threat-model narrative of the paper's introduction on the
s1238 benchmark stand-in:

* classic XOR/XNOR locking [9] — cracked in a handful of DIPs;
* SARLock [14] — *slows* the attack to ~one key per DIP;
* GK (this paper) — *invalidates* the attack: no DIP exists at all, and
  the "recovered" netlist is functionally wrong.

Run:  python examples/sat_attack_showdown.py
"""

import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.attacks import (
    CombinationalOracle,
    sat_attack,
    verify_key_against_oracle,
)
from repro.bench import iwls_benchmark
from repro.core import GkLock, expose_gk_keys
from repro.locking import SarLock, XorLock


def attack(label, netlist, oracle, truth=None):
    start = time.time()
    result = sat_attack(netlist, oracle)
    elapsed = time.time() - start
    accuracy = verify_key_against_oracle(netlist, oracle, result.key,
                                         samples=32)
    exact = "  (exact key!)" if truth is not None and result.key == truth else ""
    print(f"{label:<28} {result.iterations:>4} DIPs  "
          f"accuracy {accuracy:4.2f}  {elapsed:6.1f}s"
          f"{'  << INVALIDATED' if result.unsat_at_first_iteration else exact}")
    return result


def main():
    inst = iwls_benchmark("s1238")
    circuit, clock = inst.circuit, inst.clock
    oracle = CombinationalOracle(circuit)
    print(f"benchmark: {circuit}  (clock {clock.period}ns)\n")
    print(f"{'scheme':<28} {'DIPs':>9}  {'key accuracy':<14} {'time':>7}")

    xor = XorLock().lock(circuit, 8, random.Random(1))
    attack("XOR/XNOR locking [9]", xor.circuit, oracle, xor.key)

    sar = SarLock().lock(circuit, 8, random.Random(2))
    attack("SARLock [14]", sar.circuit, oracle, sar.key)

    gk = GkLock(clock).lock(circuit, 8, random.Random(3))
    exposed = expose_gk_keys(gk)
    attack("Glitch Key-gate (paper)", exposed, oracle)

    print("\nXOR falls quickly; SARLock burns one DIP per wrong key "
          "(exponential in key width);\nthe GK gives the solver nothing "
          "to distinguish — 'without DIPs, SAT attack will be invalid'.")


if __name__ == "__main__":
    main()
