#!/usr/bin/env python3
"""A tour of the full GK design flow (paper Sec. IV-B) with real EDA steps.

Follows one benchmark through every stage the paper runs with commercial
tools, using this repo's substrates:

  synthesize -> place & route -> STA -> pick feasible FFs -> insert GKs
  + KEYGENs -> re-synthesize under constraints -> re-P&R -> re-run STA
  -> triage true/false violations -> hybridize with XOR key-gates.

Run:  python examples/design_flow_tour.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import iwls_benchmark
from repro.core import GkLock, available_ffs
from repro.locking import HybridGkXor, select_encrypt_ff_group
from repro.netlist import overhead
from repro.pnr import place, route
from repro.sim.harness import compare_with_original, random_input_sequence
from repro.sta import analyze, path_report, summary_line


def main():
    # -- 1. "synthesis": the calibrated benchmark is born post-synthesis
    inst = iwls_benchmark("s5378")
    circuit, clock = inst.circuit, inst.clock
    print(f"[synth]    {circuit}")
    print(f"[synth]    clock period {clock.period}ns "
          f"(critical path {inst.critical_delay:.2f}ns)")

    # -- 2. placement & routing, timing sign-off -------------------------
    layout = place(circuit)
    routing = route(layout)
    timing = analyze(circuit, clock, wire_delay=routing.wire_delay)
    print(f"[pnr]      die {layout.width:.0f}x{layout.height:.0f}um, "
          f"utilization {layout.utilization:.0%}, "
          f"HPWL {routing.total_hpwl/1000:.1f}mm")
    print(f"[sta]      {summary_line(timing)}")

    # -- 3. feasible FF locations (Table I for this design) --------------
    plans = available_ffs(circuit, clock, analysis=timing)
    feasible = sorted(ff for ff, plan in plans.items() if plan.feasible)
    group = select_encrypt_ff_group(circuit, feasible)
    print(f"[plan]     {len(feasible)}/{len(plans)} FFs can host a 1ns-"
          f"glitch GK ({100*len(feasible)/len(plans):.1f}% coverage)")
    print(f"[plan]     Encrypt-Flip-Flop [4] group: {len(group)} FFs "
          f"sharing one PO signature")

    # -- 4. GK insertion + constrained re-synthesis + re-P&R -------------
    locked = GkLock(clock, run_pnr=True).lock(circuit, 16, random.Random(5))
    print(f"[lock]     inserted {len(locked.metadata['gks'])} GKs "
          f"({locked.key_size} key bits); "
          f"{len(locked.metadata['rejected_locations'])} locations rejected "
          f"by post-insertion verification")
    print(f"[lock]     overhead: {overhead(circuit, locked.circuit)}")

    # -- 5. violation triage ---------------------------------------------
    false_v = locked.metadata["false_violations"]
    true_v = locked.metadata["true_violations"]
    drift = locked.metadata["drift_waived_violations"]
    print(f"[triage]   STA reports {len(false_v)} endpoints violated through "
          f"deliberately delayed GK paths (false violations), "
          f"{len(drift)} waived as placement drift, {len(true_v)} true")
    if false_v:
        post = analyze(locked.circuit, clock)
        print("[triage]   pin-by-pin report of one 'false' violation "
              "(the deliberate delay is visible):")
        report = path_report(post, false_v[0])
        print("           " + report.replace("\n", "\n           "))

    # -- 6. the chip works; wrong keys do not ----------------------------
    seq = random_input_sequence(circuit, 10, random.Random(6))
    good = compare_with_original(circuit, locked.circuit, clock.period, seq,
                                 locked.key)
    wrong = compare_with_original(circuit, locked.circuit, clock.period, seq,
                                  locked.random_wrong_key(random.Random(7)))
    print(f"[verify]   correct key: equivalent={good.equivalent}; "
          f"wrong key: {wrong.mismatch_count} corrupted observations")

    # -- 7. the paper's hybrid: half the keys as XOR gates ----------------
    hybrid = HybridGkXor(clock).lock(circuit, 16, random.Random(8))
    print(f"[hybrid]   8 key bits on XOR gates + 4 GKs: "
          f"{overhead(circuit, hybrid.circuit)}")
    print("[hybrid]   (compare: the all-GK version above costs "
          f"{overhead(circuit, locked.circuit).cells_added} cells)")


if __name__ == "__main__":
    main()
