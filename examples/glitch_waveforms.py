#!/usr/bin/env python3
"""Regenerate the paper's timing figures as ASCII diagrams.

Figs. 4, 6, 7, and 9 — all produced by live event-driven simulation of
the GK/KEYGEN structures, not drawings.

Run:  python examples/glitch_waveforms.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.reporting import (
    figure4_gk_waveform,
    figure6_keygen_waveform,
    figure7_scenarios,
    figure9_trigger_windows,
)


def main():
    for figure in (
        figure4_gk_waveform(),
        figure6_keygen_waveform(),
        figure7_scenarios(),
        figure9_trigger_windows(),
    ):
        print("=" * 74)
        print(figure.title)
        print("-" * 74)
        print(figure.diagram)
        print()
    print("legend: '#' = 1, '_' = 0, '?' = X/metastable")


if __name__ == "__main__":
    main()
